package netexec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/simclock"
	"cubrick/internal/trace"
)

// The deterministic trace-tree test: a fan-out-8 query on a simulated
// tracer clock, with one injected per-try failure (partition t#3 gets an
// HTTP 500 on its first try) and one hung primary (t#7's primary never
// answers, so the hedge to its replica rescues it). A sequencing
// RoundTripper serializes the requests into explicit turns — each turn
// advances the fake clock by a known amount before answering — so every
// span's start and duration is exact and the whole tree is asserted as
// one string: the retry span sits under t#3's partition span, the losing
// hedge half ends canceled, and the durations are the fake-clock deltas.

// seqTurn is one scheduled response: the request it answers (keyed
// partition|host|try), a settle token that must have been observed before
// the turn may fire, how far to advance the fake clock, and whether to
// answer with the injected 500.
type seqTurn struct {
	key     string
	pre     string
	advance time.Duration
	fail    bool
}

// seqRT is the sequencing transport. All first-wave requests (the eight
// initial tries) must be blocked inside RoundTrip before the first turn
// fires, so every partition and fetch span starts at fake-clock zero;
// after that, turns fire in order, each gated on the previous turn's
// spans having ended (settle tokens fed by Tracer.OnSpanEnd).
type seqRT struct {
	clk  *simclock.SimClock
	blob []byte // success response body (a marshaled engine partial)

	mu        sync.Mutex
	cond      *sync.Cond
	firstWave int
	next      int
	turns     []seqTurn
	tries     map[string]int // partition|host -> tries seen
	settled   map[string]bool
}

func newSeqRT(clk *simclock.SimClock, blob []byte, turns []seqTurn) *seqRT {
	rt := &seqRT{
		clk:     clk,
		blob:    blob,
		turns:   turns,
		tries:   make(map[string]int),
		settled: make(map[string]bool),
	}
	rt.cond = sync.NewCond(&rt.mu)
	return rt
}

// settle records a span-end token and wakes the barrier.
func (rt *seqRT) settle(token string) {
	rt.mu.Lock()
	rt.settled[token] = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

func (rt *seqRT) respond(req *http.Request, status int, body []byte) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        make(http.Header),
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

func (rt *seqRT) RoundTrip(req *http.Request) (*http.Response, error) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	req.Body.Close()
	var pr struct {
		Partition string `json:"partition"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, err
	}
	host := req.URL.Host
	rt.mu.Lock()
	tk := pr.Partition + "|" + host
	rt.tries[tk]++
	key := fmt.Sprintf("%s|%s|%d", pr.Partition, host, rt.tries[tk])
	if rt.tries[tk] == 1 && host != "p7b" {
		rt.firstWave++
		rt.cond.Broadcast()
	}
	if host == "p7a" {
		// The hung primary: hold the request open until the hedge's win
		// cancels it, so its fetch span ends StatusCanceled.
		rt.mu.Unlock()
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	for {
		if rt.firstWave == 8 && rt.next < len(rt.turns) && rt.turns[rt.next].key == key {
			turn := rt.turns[rt.next]
			if turn.pre == "" || rt.settled[turn.pre] {
				rt.clk.Advance(turn.advance)
				rt.next++
				rt.cond.Broadcast()
				rt.mu.Unlock()
				if turn.fail {
					return rt.respond(req, http.StatusInternalServerError, []byte("injected fault")), nil
				}
				return rt.respond(req, http.StatusOK, rt.blob), nil
			}
		}
		rt.cond.Wait()
	}
}

// traceTestBlob builds one success partial: a 5-row store executed under
// a bare COUNT, marshaled to the wire form every fake worker returns.
func traceTestBlob(t *testing.T) []byte {
	t.Helper()
	st, err := brick.NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Insert([]uint32{uint32(i % 30), uint32(i % 20)}, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	partial, err := engine.ExecuteParallel(st, q)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := partial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestTraceTreeDeterministic drives the scenario above and asserts the
// exact rendered trace tree.
func TestTraceTreeDeterministic(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := simclock.NewSim(epoch)
	tracer := trace.New(trace.Config{Now: clk.Now, Seed: 42})

	const ms = time.Millisecond
	turns := []seqTurn{
		{key: "t#0|p0|1", advance: 1 * ms},
		{key: "t#1|p1|1", advance: 1 * ms, pre: "partition:t#0"},
		{key: "t#2|p2|1", advance: 1 * ms, pre: "partition:t#1"},
		{key: "t#4|p4|1", advance: 1 * ms, pre: "partition:t#2"},
		{key: "t#5|p5|1", advance: 1 * ms, pre: "partition:t#4"},
		{key: "t#6|p6|1", advance: 1 * ms, pre: "partition:t#5"},
		{key: "t#3|p3|1", advance: 2 * ms, pre: "partition:t#6", fail: true},
		{key: "t#3|p3|2", advance: 2 * ms, pre: "fetch:http://p3:1"},
		{key: "t#7|p7b|1", advance: 2 * ms, pre: "partition:t#3"},
	}
	rt := newSeqRT(clk, traceTestBlob(t), turns)
	tracer.OnSpanEnd = func(d trace.SpanData) {
		switch d.Name {
		case "partition":
			rt.settle("partition:" + d.Attrs["partition"])
		case "fetch":
			rt.settle("fetch:" + d.Attrs["url"] + ":" + d.Attrs["try"])
		}
	}

	coord := &Coordinator{
		Client: &http.Client{Transport: rt},
		Policy: QueryPolicy{
			MaxAttempts: 2,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  2 * time.Millisecond,
			// The hedge delay is real wall time (the tracer clock is the
			// only simulated one); 750ms is far beyond the few
			// milliseconds the first eight turns need, so the hedge's
			// fetch span reliably starts after t#3's retry resolved —
			// fake clock 10ms.
			HedgeQuantile: 0.5,
			HedgeMinDelay: 750 * time.Millisecond,
		},
		Tracer: tracer,
	}
	targets := make([]Target, 8)
	for i := 0; i < 8; i++ {
		targets[i] = Target{URL: fmt.Sprintf("http://p%d", i), Partition: fmt.Sprintf("t#%d", i)}
	}
	targets[7] = Target{URL: "http://p7a", Partition: "t#7", Replicas: []string{"http://p7b"}}

	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	ctx, root := tracer.StartSpan(context.Background(), "coordinator.query")
	traceID := root.TraceID()
	res, err := coord.Query(ctx, targets, q)
	root.EndErr(err)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	// 8 successful partials of 5 rows each; the canceled hedge loser and
	// the failed first try must not double-count.
	if res.Rows[0][0] != 40 {
		t.Fatalf("count = %v, want 40", res.Rows[0][0])
	}

	// The losing hedge half ends asynchronously after Query returns; wait
	// for the full 21-span tree to close before snapshotting.
	const wantSpans = 21
	deadline := time.Now().Add(5 * time.Second)
	var td trace.TraceData
	for {
		var ok bool
		td, ok = tracer.Get(traceID)
		if ok && len(td.Spans) == wantSpans {
			open := false
			for _, s := range td.Spans {
				if s.Status == trace.StatusOpen {
					open = true
					break
				}
			}
			if !open {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace did not close (%d spans):\n%s", len(td.Spans), td.Tree())
		}
		time.Sleep(time.Millisecond)
	}

	want := `coordinator.query ok [0.000ms +12.000ms]
  coordinator.fanout ok [0.000ms +12.000ms] targets=8
    partition ok [0.000ms +1.000ms] partition=t#0
      fetch ok [0.000ms +1.000ms] role=primary try=1 url=http://p0
    partition ok [0.000ms +10.000ms] partition=t#3
      fetch error [0.000ms +8.000ms] role=primary try=1 url=http://p3 err="status 500: injected fault"
      fetch ok [8.000ms +2.000ms] role=primary try=2 url=http://p3
    partition ok [0.000ms +12.000ms] partition=t#7
      fetch canceled [0.000ms +12.000ms] role=primary try=1 url=http://p7a
      fetch ok [10.000ms +2.000ms] role=hedge try=1 url=http://p7b
    partition ok [0.000ms +2.000ms] partition=t#1
      fetch ok [0.000ms +2.000ms] role=primary try=1 url=http://p1
    partition ok [0.000ms +3.000ms] partition=t#2
      fetch ok [0.000ms +3.000ms] role=primary try=1 url=http://p2
    partition ok [0.000ms +4.000ms] partition=t#4
      fetch ok [0.000ms +4.000ms] role=primary try=1 url=http://p4
    partition ok [0.000ms +5.000ms] partition=t#5
      fetch ok [0.000ms +5.000ms] role=primary try=1 url=http://p5
    partition ok [0.000ms +6.000ms] partition=t#6
      fetch ok [0.000ms +6.000ms] role=primary try=1 url=http://p6
    coordinator.finalize ok [12.000ms +0.000ms]
`
	if got := td.Tree(); got != want {
		t.Errorf("trace tree mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
