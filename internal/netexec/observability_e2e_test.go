package netexec

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cubrick/internal/engine"
	"cubrick/internal/metrics"
	"cubrick/internal/trace"
)

// TestChaosObservabilityEndToEnd is the harness test behind the PR's
// acceptance criterion: a replicated cluster under 2% server-side fault
// injection must produce, for a query that needed rescuing, a trace that
// (a) is retrievable by ID, (b) shows the rescuing retry in the tree,
// (c) accounts for >=95% of the measured wall time, and (d) continues on
// the worker side — the same trace ID is served by the worker's own
// /debug/trace endpoint with its scan/marshal spans. The /metrics and
// /stats planes are asserted over real HTTP along the way.
func TestChaosObservabilityEndToEnd(t *testing.T) {
	const (
		nWorkers   = 4
		partitions = 8
		rows       = 400
		failProb   = 0.02
	)
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < nWorkers; i++ {
		w := NewWorker()
		w.Tracer = trace.New(trace.Config{})
		w.Metrics = metrics.NewRegistry()
		wh := w.Handler()
		// Mirror the binary's layout: chaos injects on the data path only,
		// so the observability plane stays reachable while queries fail.
		mux := http.NewServeMux()
		mux.Handle("/", wh)
		mux.Handle("/partial", ChaosHandler(failProb, int64(1000+i), wh))
		srv := httptest.NewServer(mux)
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	cluster, err := NewCluster(urls, 0, &http.Client{Transport: NewTransport(partitions)})
	if err != nil {
		t.Fatal(err)
	}
	cluster.SetReplication(1)
	if err := cluster.CreateTable(context.Background(), "events", testSchema(), partitions); err != nil {
		t.Fatal(err)
	}
	dims := make([][]uint32, rows)
	mets := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
	}
	if err := cluster.Load(context.Background(), "events", dims, mets); err != nil {
		t.Fatal(err)
	}

	tracer := trace.New(trace.Config{})
	reg := metrics.NewRegistry()
	coord := cluster.Coordinator()
	coord.Policy = QueryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	coord.Metrics = reg
	coord.Tracer = tracer

	// Query until chaos hits one: with 8 partitions at 2% per request,
	// ~15% of queries need a retry, so a rescue shows up in the first few
	// dozen iterations; 400 makes the test effectively deterministic.
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	var rescued trace.TraceData
	var wall time.Duration
	found := false
	for i := 0; i < 400 && !found; i++ {
		start := time.Now()
		ctx, root := tracer.StartSpan(context.Background(), "coordinator.query")
		res, err := cluster.Query(ctx, "events", q)
		root.EndErr(err)
		wall = time.Since(start)
		if err != nil {
			t.Fatalf("query %d failed despite retries: %v", i, err)
		}
		if res.Rows[0][0] != rows {
			t.Fatalf("query %d count = %v, want %d", i, res.Rows[0][0], rows)
		}
		td, ok := tracer.Get(root.TraceID())
		if !ok {
			t.Fatalf("query %d trace %s not retained", i, root.TraceID())
		}
		for _, s := range td.Spans {
			if s.Name == "fetch" && s.Status == trace.StatusOK &&
				(s.Attrs["try"] != "1" || s.Attrs["role"] == "hedge") {
				rescued = td
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("400 chaos queries produced no retry/hedge rescue")
	}

	// (b) The rescue is visible in the rendered tree: a second fetch under
	// a partition span that still ended ok.
	tree := rescued.Tree()
	if !strings.Contains(tree, "try=2") && !strings.Contains(tree, "role=hedge") {
		t.Fatalf("rescue not visible in tree:\n%s", tree)
	}
	if !strings.Contains(tree, "chaos: injected failure") {
		t.Fatalf("injected fault not recorded on the failed fetch span:\n%s", tree)
	}

	// (c) The root span accounts for >=95% of the measured wall time.
	var root trace.SpanData
	for _, s := range rescued.Spans {
		if s.Name == "coordinator.query" {
			root = s
		}
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	if root.DurationMS < 0.95*wallMS {
		t.Fatalf("root span %.3fms accounts for <95%% of %.3fms wall", root.DurationMS, wallMS)
	}
	if got := reg.CounterValues()["netexec.fetch.retries"]; got < 1 {
		t.Fatalf("retries counter = %d after a rescued query", got)
	}

	// (d) The trace continued on the worker side: at least one worker
	// serves the same trace ID from its own ring, with the remote
	// worker.partial span and the execute span's scan accounting.
	client := &http.Client{Timeout: 5 * time.Second}
	workerSide := false
	for _, u := range urls {
		resp, err := client.Get(u + "/debug/trace/" + rescued.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		var td trace.TraceData
		if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		var sawPartial, sawExecute bool
		for _, s := range td.Spans {
			switch s.Name {
			case "worker.partial":
				sawPartial = true
			case "worker.execute":
				sawExecute = sawExecute || s.Attrs["rows_scanned"] != ""
			}
		}
		if sawPartial && sawExecute {
			workerSide = true
		}
	}
	if !workerSide {
		t.Fatal("no worker served the rescued trace with partial+execute spans")
	}

	// The worker metrics plane over real HTTP: Prometheus text with the
	// latency summary and the counters, plus the legacy /stats JSON alias.
	resp, err := client.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("worker /metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE worker_partial_requests counter",
		"# TYPE worker_partial_latency summary",
		`worker_partial_latency{quantile="0.99"}`,
		"worker_partial_latency_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("worker /metrics missing %q:\n%s", want, text)
		}
	}
	resp, err = client.Get(urls[0] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Counters["worker.partial.requests"] < 1 {
		t.Fatalf("worker /stats alias counters = %v", stats.Counters)
	}

	// The coordinator registry exports the same way (the binary mounts it
	// at /metrics; here the handler is exercised directly).
	rec := httptest.NewRecorder()
	metrics.Handler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	ctext := rec.Body.String()
	for _, want := range []string{
		"# TYPE netexec_fetch_retries counter",
		"# TYPE netexec_query_latency summary",
		`netexec_query_latency{quantile="0.999"}`,
	} {
		if !strings.Contains(ctext, want) {
			t.Fatalf("coordinator /metrics missing %q:\n%s", want, ctext)
		}
	}
}
