package netexec

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"cubrick/internal/brick"
	"cubrick/internal/core"
	"cubrick/internal/cubrick"
	"cubrick/internal/engine"
)

// Cluster is the coordinator-side view of a networked Cubrick cluster: a
// set of worker URLs, a catalog of tables, and the partial-sharding layout
// that maps each table's partitions to shards (via the §IV-A monotonic
// mapping) and shards to workers. It is the multi-process counterpart of
// the in-process Deployment: placement is deliberately simple (shard id
// modulo worker count, replicas on the following workers) because the full
// placement/balancing machinery lives in internal/shardmgr; Cluster
// demonstrates the data plane.
//
// The Cluster owns one long-lived Coordinator so resilience state —
// per-host circuit breakers, the hedge latency distribution — accumulates
// across queries; configure it through Coordinator().
type Cluster struct {
	mapper core.Mapper
	client *http.Client
	coord  *Coordinator

	mu          sync.Mutex
	workers     []string // worker base URLs
	joiners     []string // workers added after creation; receive only migrated partitions
	replication int      // replica copies per partition beyond the primary
	tables      map[string]clusterTable
	// overrides maps partition names routed away from the static modulo
	// placement by a migration (see MovePartition in dualread.go).
	overrides map[string]*placementOverride

	// loadRetry configures ingest retries: a load hitting a fenced or
	// briefly unavailable partition backs off and re-resolves placement,
	// so a bounded cutover pause costs latency, never rows. Zero value =
	// single attempt (the pre-migration behavior).
	loadRetry QueryPolicy
}

type clusterTable struct {
	schema     brick.Schema
	partitions int
	replicas   int // replica copies beyond the primary, fixed at create time
}

// ErrNoWorkers is returned when operations run against an empty cluster.
var ErrNoWorkers = errors.New("netexec: cluster has no workers")

// NewCluster builds a coordinator over the given worker URLs.
func NewCluster(workers []string, maxShards int64, client *http.Client) (*Cluster, error) {
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	if maxShards <= 0 {
		maxShards = 100000
	}
	if client == nil {
		// Scatter-gather reuses a pooled keep-alive transport sized to the
		// fan-out; a fresh dial per partial is pure coordinator overhead.
		client = &http.Client{Transport: NewTransport(len(workers))}
	}
	return &Cluster{
		mapper:  core.MonotonicMapper{MaxShards: maxShards},
		client:  client,
		coord:   &Coordinator{Client: client},
		workers: append([]string(nil), workers...),
		tables:  make(map[string]clusterTable),
	}, nil
}

// Coordinator returns the cluster's long-lived coordinator, whose Policy,
// Breakers and Metrics fields configure the resilience layer for every
// query on this cluster. Configure it before issuing queries.
func (c *Cluster) Coordinator() *Coordinator {
	return c.coord
}

// SetReplication sets how many replica copies (beyond the primary) future
// CreateTable calls place per partition. Replicas land on the workers
// following the primary in the ring; n is capped at worker count - 1 since
// extra copies on the same host add nothing.
func (c *Cluster) SetReplication(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if max := len(c.workers) - 1; n > max {
		n = max
	}
	c.replication = n
}

// Workers returns the cluster's worker URLs, joiners included.
func (c *Cluster) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.workers...)
	return append(out, c.joiners...)
}

// SetLoadRetry configures ingest retries (attempts, backoff). Loads that
// fail with a retryable error — a fenced partition mid-cutover, a worker
// briefly down — re-resolve the partition's placement and try again with
// capped jittered backoff.
func (c *Cluster) SetLoadRetry(p QueryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loadRetry = p
}

// placement returns the worker URLs holding a shard: the primary followed
// by `replicas` distinct successors on the ring. Callers hold c.mu or rely
// on workers being immutable after construction (they are).
func (c *Cluster) placement(shard int64, replicas int) []string {
	n := len(c.workers)
	urls := make([]string, 0, 1+replicas)
	for i := 0; i <= replicas && i < n; i++ {
		urls = append(urls, c.workers[int((shard+int64(i))%int64(n))])
	}
	return urls
}

// CreateTable registers a table with the given partition count and creates
// each partition on its primary worker and on the cluster's configured
// replica count of successor workers.
func (c *Cluster) CreateTable(ctx context.Context, name string, schema brick.Schema, partitions int) error {
	if err := core.ValidateTableName(name); err != nil {
		return err
	}
	if err := schema.Validate(); err != nil {
		return err
	}
	if partitions < 1 {
		partitions = 1
	}
	c.mu.Lock()
	if _, ok := c.tables[name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("netexec: table %q exists", name)
	}
	replicas := c.replication
	c.tables[name] = clusterTable{schema: schema, partitions: partitions, replicas: replicas}
	c.mu.Unlock()

	for p := 0; p < partitions; p++ {
		shard := c.mapper.Shard(name, p)
		for _, url := range c.placement(shard, replicas) {
			cl := &Client{BaseURL: url, HTTP: c.client}
			if err := cl.CreatePartition(ctx, core.PartitionName(name, p), schema); err != nil {
				return err
			}
		}
	}
	return nil
}

// Tables lists the catalog: name and partition count, sorted by name.
func (c *Cluster) Tables() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.tables))
	for name, t := range c.tables {
		out[name] = t.partitions
	}
	return out
}

// table returns a catalog entry.
func (c *Cluster) table(name string) (clusterTable, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return clusterTable{}, fmt.Errorf("netexec: unknown table %q", name)
	}
	return t, nil
}

// Load routes rows to partitions by dimension hash (the same routing the
// in-process deployment uses) and ships each partition's batch to its
// worker — and to each replica — as one binary columnar blob (POST
// /loadbin). Replica copies receive identical batches, so any copy can
// serve the partition's partial.
func (c *Cluster) Load(ctx context.Context, table string, dims [][]uint32, metrics [][]float64) error {
	t, err := c.table(table)
	if err != nil {
		return err
	}
	if len(dims) != len(metrics) {
		return errors.New("netexec: dims/metrics length mismatch")
	}
	byPart := make(map[int][]int) // partition -> row indexes
	for i := range dims {
		p := cubrick.RouteRow(dims[i], t.partitions)
		byPart[p] = append(byPart[p], i)
	}
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		idx := byPart[p]
		bd := make([][]uint32, len(idx))
		bm := make([][]float64, len(idx))
		for j, i := range idx {
			bd[j] = dims[i]
			bm[j] = metrics[i]
		}
		shard := c.mapper.Shard(table, p)
		part := core.PartitionName(table, p)
		if err := c.loadPartition(ctx, part, shard, t.replicas, bd, bm); err != nil {
			return err
		}
	}
	return nil
}

// loadPartition ships one partition's batch to its placement, retrying
// retryable failures under the cluster's load policy. Placement is
// re-resolved on every attempt: a batch that hit a fenced source during a
// cutover pause retries into the new owner once the flip lands, which is
// what makes the migration's ingest unavailability a latency bump instead
// of lost rows.
func (c *Cluster) loadPartition(ctx context.Context, part string, shard int64, replicas int, bd [][]uint32, bm [][]float64) error {
	c.mu.Lock()
	policy := c.loadRetry
	c.mu.Unlock()
	attempts := policy.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return lastErr
		}
		urls, _ := c.route(part, shard, replicas)
		lastErr = c.loadOnce(ctx, part, urls, bd, bm)
		if lastErr == nil {
			return nil
		}
		if ClassifyError(lastErr) == Terminal {
			return lastErr
		}
		if a < attempts-1 {
			c.coord.count("netexec.load.retries")
			if serr := sleepCtx(ctx, jitter(policy.backoffFor(a))); serr != nil {
				return lastErr
			}
		}
	}
	return lastErr
}

// loadOnce ships the batch to the primary and every replica once.
func (c *Cluster) loadOnce(ctx context.Context, part string, urls []string, bd [][]uint32, bm [][]float64) error {
	for ri, url := range urls {
		cl := &Client{BaseURL: url, HTTP: c.client}
		if ri == 0 {
			// The primary's response carries the partition's post-ingest
			// epoch; feeding it to the coordinator invalidates any cached
			// result over this partition before the next query can hit.
			epoch, ok, err := cl.LoadBinEpoch(ctx, part, bd, bm)
			if err != nil {
				return err
			}
			if ok {
				c.coord.ObserveEpoch(part, epoch)
			}
			continue
		}
		if err := cl.LoadBin(ctx, part, bd, bm); err != nil {
			return err
		}
	}
	return nil
}

// Targets returns the scatter-gather targets of a table, replicas
// included.
func (c *Cluster) Targets(table string) ([]Target, error) {
	t, err := c.table(table)
	if err != nil {
		return nil, err
	}
	targets := make([]Target, t.partitions)
	for p := 0; p < t.partitions; p++ {
		part := core.PartitionName(table, p)
		urls, dual := c.route(part, c.mapper.Shard(table, p), t.replicas)
		targets[p] = Target{URL: urls[0], Partition: part, Replicas: urls[1:], Dual: dual}
	}
	return targets, nil
}

// Query executes a grouped aggregation over the networked cluster using
// the cluster's shared coordinator (and therefore its resilience policy
// and breaker state).
func (c *Cluster) Query(ctx context.Context, table string, q *engine.Query) (*engine.Result, error) {
	// The plan span (catalog lookup + target placement) is a sibling of
	// the fan-out span, both under whatever root span ctx carries, so the
	// trace splits coordinator time into plan vs. execution.
	_, span := c.coord.Tracer.StartSpan(ctx, "coordinator.plan")
	span.SetAttr("table", table)
	targets, err := c.Targets(table)
	span.EndErr(err)
	if err != nil {
		return nil, err
	}
	return c.coord.Query(ctx, targets, q)
}

// Fanout returns how many distinct workers a table's queries touch — the
// partial-sharding containment, visible across processes. Replicas do not
// count: they are failover capacity, not per-query fan-out.
func (c *Cluster) Fanout(table string) (int, error) {
	targets, err := c.Targets(table)
	if err != nil {
		return 0, err
	}
	distinct := make(map[string]bool)
	for _, t := range targets {
		distinct[t.URL] = true
	}
	return len(distinct), nil
}

// Health pings every worker; it returns the unreachable ones.
func (c *Cluster) Health(ctx context.Context) (unhealthy []string) {
	for _, url := range c.Workers() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/health", nil)
		if err != nil {
			unhealthy = append(unhealthy, url)
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil || resp.StatusCode != http.StatusOK {
			unhealthy = append(unhealthy, url)
		}
		if resp != nil {
			resp.Body.Close()
		}
	}
	return unhealthy
}
