package netexec

import (
	"context"
	"net/http/httptest"
	"testing"

	"cubrick/internal/engine"
)

// startWorkers boots n HTTP workers and returns their URLs plus a cleanup.
func startWorkers(t *testing.T, n int) ([]string, func()) {
	t.Helper()
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(NewWorker().Handler())
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	return urls, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

func TestClusterEndToEnd(t *testing.T) {
	urls, cleanup := startWorkers(t, 6)
	defer cleanup()
	c, err := NewCluster(urls, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(context.Background(), "events", testSchema(), 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Tables()["events"]; got != 4 {
		t.Fatalf("catalog partitions = %d", got)
	}

	n := 1000
	dims := make([][]uint32, n)
	mets := make([][]float64, n)
	var want float64
	for i := 0; i < n; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
		want += float64(i)
	}
	if err := c.Load(context.Background(), "events", dims, mets); err != nil {
		t.Fatal(err)
	}

	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value", Alias: "total"}}}
	res, err := c.Query(context.Background(), "events", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != want {
		t.Fatalf("networked sum = %v, want %v", res.Rows[0][0], want)
	}
	if res.RowsScanned != int64(n) {
		t.Fatalf("scanned %d, want %d", res.RowsScanned, n)
	}

	// Partial-sharding containment across processes.
	fanout, err := c.Fanout("events")
	if err != nil {
		t.Fatal(err)
	}
	if fanout > 4 {
		t.Fatalf("fanout %d exceeds partition count", fanout)
	}
	if fanout >= 6 {
		t.Fatal("query touches every worker — not partially sharded")
	}

	// Health: all workers up.
	if bad := c.Health(context.Background()); len(bad) != 0 {
		t.Fatalf("unhealthy workers: %v", bad)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewCluster(nil, 0, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	urls, cleanup := startWorkers(t, 2)
	defer cleanup()
	c, _ := NewCluster(urls, 0, nil)
	if err := c.CreateTable(context.Background(), "bad#name", testSchema(), 2); err == nil {
		t.Fatal("reserved table name accepted")
	}
	if err := c.CreateTable(context.Background(), "t", testSchema(), 2); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(context.Background(), "t", testSchema(), 2); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := c.Load(context.Background(), "ghost", nil, nil); err == nil {
		t.Fatal("load into unknown table accepted")
	}
	if err := c.Load(context.Background(), "t", [][]uint32{{1, 1}}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := c.Query(context.Background(), "ghost", q); err == nil {
		t.Fatal("query on unknown table accepted")
	}
}

func TestClusterHealthDetectsDeadWorker(t *testing.T) {
	urls, cleanup := startWorkers(t, 3)
	c, _ := NewCluster(urls, 0, nil)
	cleanup() // kill everything
	bad := c.Health(context.Background())
	if len(bad) != 3 {
		t.Fatalf("Health reported %d unhealthy, want 3", len(bad))
	}
}

func TestClusterQueryFailsWhenWorkerDies(t *testing.T) {
	urls, cleanup := startWorkers(t, 3)
	defer cleanup()
	// An extra worker that will die after table creation.
	dying := httptest.NewServer(NewWorker().Handler())
	all := append(urls, dying.URL)
	c, _ := NewCluster(all, 0, nil)
	if err := c.CreateTable(context.Background(), "t", testSchema(), 4); err != nil {
		t.Fatal(err)
	}
	dims := [][]uint32{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	mets := [][]float64{{1}, {1}, {1}, {1}}
	if err := c.Load(context.Background(), "t", dims, mets); err != nil {
		t.Fatal(err)
	}
	dying.Close()
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := c.Query(context.Background(), "t", q); err == nil {
		t.Skip("no partition landed on the dying worker in this layout")
	}
}
