package netexec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cubrick/internal/cluster"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
)

func TestClassifyError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"canceled", context.Canceled, Terminal},
		{"wrapped canceled", fmt.Errorf("do: %w", context.Canceled), Terminal},
		{"deadline (per-try)", context.DeadlineExceeded, Retryable},
		{"500", &HTTPStatusError{Status: 500}, Retryable},
		{"503", &HTTPStatusError{Status: 503}, Retryable},
		{"429", &HTTPStatusError{Status: 429}, Retryable},
		{"400", &HTTPStatusError{Status: 400}, Terminal},
		{"404", &HTTPStatusError{Status: 404}, Terminal},
		{"oversized partial", &PartialSizeError{Limit: 10}, Terminal},
		{"host down", fmt.Errorf("x: %w", cluster.ErrHostDown), Retryable},
		{"request failed", fmt.Errorf("x: %w", cluster.ErrRequestFailed), Retryable},
		{"sim timeout", cluster.ErrTimeout, Retryable},
		{"unknown transport", errors.New("read: connection reset by peer"), Retryable},
	}
	for _, tc := range cases {
		if got := ClassifyError(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyError = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBreakerCycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	g := NewBreakerGroupAt(BreakerConfig{FailureThreshold: 3, OpenTimeout: 10 * time.Second, HalfOpenSuccesses: 2}, clock)
	const host = "http://w1"

	if g.State(host) != BreakerClosed {
		t.Fatalf("fresh breaker state = %v", g.State(host))
	}
	// Failures below the threshold keep it closed.
	g.ReportFailure(host)
	g.ReportFailure(host)
	if !g.Allow(host) || g.State(host) != BreakerClosed {
		t.Fatalf("below threshold: state = %v", g.State(host))
	}
	// Third consecutive failure opens it.
	g.ReportFailure(host)
	if g.State(host) != BreakerOpen {
		t.Fatalf("at threshold: state = %v", g.State(host))
	}
	if g.Allow(host) {
		t.Fatal("open breaker admitted a request")
	}
	// Still open just before the timeout.
	now = now.Add(10*time.Second - time.Millisecond)
	if g.Allow(host) {
		t.Fatal("open breaker admitted a request before OpenTimeout")
	}
	// After the timeout: one probe allowed, a second concurrent one denied.
	now = now.Add(time.Millisecond)
	if !g.Allow(host) {
		t.Fatal("half-open probe denied")
	}
	if g.State(host) != BreakerHalfOpen {
		t.Fatalf("post-timeout state = %v", g.State(host))
	}
	if g.Allow(host) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens; the timer restarts.
	g.ReportFailure(host)
	if g.State(host) != BreakerOpen || g.Allow(host) {
		t.Fatalf("after probe failure: state = %v", g.State(host))
	}
	now = now.Add(10 * time.Second)
	if !g.Allow(host) {
		t.Fatal("second probe denied after re-open timeout")
	}
	// Two consecutive probe successes close it.
	g.ReportSuccess(host)
	if g.State(host) != BreakerHalfOpen {
		t.Fatalf("after first success: state = %v", g.State(host))
	}
	if !g.Allow(host) {
		t.Fatal("second probe denied after first success")
	}
	g.ReportSuccess(host)
	if g.State(host) != BreakerClosed {
		t.Fatalf("after enough successes: state = %v", g.State(host))
	}
	if !g.Allow(host) {
		t.Fatal("closed breaker denied a request")
	}
}

func TestBreakerMetrics(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewBreakerGroupAt(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenSuccesses: 1}, func() time.Time { return now })
	reg := metrics.NewRegistry()
	g.Metrics = reg
	g.ReportFailure("h")
	now = now.Add(2 * time.Second)
	g.Allow("h")
	g.ReportFailure("h")
	vals := reg.CounterValues()
	if vals["netexec.breaker.opened"] != 1 || vals["netexec.breaker.reopened"] != 1 {
		t.Fatalf("breaker counters = %v", vals)
	}
}

// TestExactFailFast is the regression guard: with the default (exact)
// policy the first worker failure must fail the query immediately and
// cancel the in-flight peers, exactly as before the resilience layer.
func TestExactFailFast(t *testing.T) {
	var peerCanceled atomic.Bool
	started := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can observe the
		// client disconnect and cancel the request context.
		io.Copy(io.Discard, r.Body)
		close(started)
		select {
		case <-r.Context().Done():
			peerCanceled.Store(true)
		case <-time.After(5 * time.Second):
		}
	}))
	defer stalled.Close()
	// The failing worker answers only once the stalled request is in flight,
	// so the cancellation the test asserts on is guaranteed to have a live
	// peer to hit.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()

	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	targets := []Target{
		{URL: stalled.URL, Partition: "a"},
		{URL: failing.URL, Partition: "b"},
	}
	start := time.Now()
	_, err := (&Coordinator{}).Query(context.Background(), targets, q)
	if !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("exact query with dead worker = %v, want ErrWorkerFailed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fail-fast took %v; peer cancellation is broken", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !peerCanceled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("peer request was not canceled after the first failure")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryRecovers: a worker that fails its first two requests must still
// serve the query under a 3-attempt policy, and the retry counter records
// the extra attempts.
func TestRetryRecovers(t *testing.T) {
	targets, _, cleanup := startCluster(t, 1, 100)
	defer cleanup()
	var calls atomic.Int64
	inner := targets[0].URL
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		// Proxy to the real worker.
		body, _ := io.ReadAll(r.Body)
		resp, err := http.Post(inner+r.URL.Path, r.Header.Get("Content-Type"), strings.NewReader(string(body)))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer flaky.Close()

	reg := metrics.NewRegistry()
	coord := &Coordinator{
		Policy:  QueryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Metrics: reg,
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	res, err := coord.Query(context.Background(), []Target{{URL: flaky.URL, Partition: targets[0].Partition}}, q)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if res.Rows[0][0] != 100 {
		t.Fatalf("count = %v, want 100", res.Rows[0][0])
	}
	if res.Coverage != 1 || len(res.MissingPartitions) != 0 {
		t.Fatalf("recovered query coverage = %v missing = %v", res.Coverage, res.MissingPartitions)
	}
	if got := reg.CounterValues()["netexec.fetch.retries"]; got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestReplicaFailover: the primary is permanently down; attempts must
// rotate to the replica URL and succeed without degradation.
func TestReplicaFailover(t *testing.T) {
	targets, _, cleanup := startCluster(t, 1, 50)
	defer cleanup()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	coord := &Coordinator{Policy: QueryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	res, err := coord.Query(context.Background(), []Target{{
		URL:       dead.URL,
		Partition: targets[0].Partition,
		Replicas:  []string{targets[0].URL},
	}}, q)
	if err != nil {
		t.Fatalf("failover to replica failed: %v", err)
	}
	if res.Rows[0][0] != 50 || res.Coverage != 1 {
		t.Fatalf("failover result = %v coverage %v", res.Rows[0][0], res.Coverage)
	}
}

// TestDegradedCoverage: with MinCoverage < 1 an unreachable partition is
// dropped and the result reports the exact merged fraction; tightening
// MinCoverage past the achievable fraction fails the query.
func TestDegradedCoverage(t *testing.T) {
	targets, _, cleanup := startCluster(t, 4, 400)
	defer cleanup()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	targets[2].URL = dead.URL

	reg := metrics.NewRegistry()
	coord := &Coordinator{
		Policy:  QueryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MinCoverage: 0.5},
		Metrics: reg,
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	res, err := coord.Query(context.Background(), targets, q)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if res.Coverage != 0.75 {
		t.Fatalf("coverage = %v, want exactly 0.75", res.Coverage)
	}
	if len(res.MissingPartitions) != 1 || res.MissingPartitions[0] != targets[2].Partition {
		t.Fatalf("missing = %v, want [%s]", res.MissingPartitions, targets[2].Partition)
	}
	// 400 rows round-robin over 4 partitions; one partition dropped.
	if res.Rows[0][0] != 300 {
		t.Fatalf("degraded count = %v, want 300", res.Rows[0][0])
	}
	if got := reg.CounterValues()["netexec.query.degraded"]; got != 1 {
		t.Fatalf("degraded counter = %d", got)
	}

	// The same layout under a stricter floor must fail.
	strict := &Coordinator{Policy: QueryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MinCoverage: 0.9}}
	if _, err := strict.Query(context.Background(), targets, q); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("coverage below floor = %v, want ErrWorkerFailed", err)
	}
}

// TestHedgeWins: the primary stalls well past the hedge delay while the
// replica is fast; the hedged request must win and be counted.
func TestHedgeWins(t *testing.T) {
	targets, _, cleanup := startCluster(t, 1, 50)
	defer cleanup()
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(3 * time.Second):
			http.Error(w, "too slow to matter", http.StatusInternalServerError)
		}
	}))
	defer stall.Close()

	reg := metrics.NewRegistry()
	coord := &Coordinator{
		Policy: QueryPolicy{
			MaxAttempts:   1,
			HedgeQuantile: 0.95,
			HedgeMinDelay: 5 * time.Millisecond,
		},
		Metrics: reg,
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	start := time.Now()
	res, err := coord.Query(context.Background(), []Target{{
		URL:       stall.URL,
		Partition: targets[0].Partition,
		Replicas:  []string{targets[0].URL},
	}}, q)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if res.Rows[0][0] != 50 {
		t.Fatalf("hedged count = %v", res.Rows[0][0])
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not cut the straggler: %v", elapsed)
	}
	vals := reg.CounterValues()
	if vals["netexec.fetch.hedges"] < 1 || vals["netexec.fetch.hedge_wins"] < 1 {
		t.Fatalf("hedge counters = %v", vals)
	}
}

// TestPartialSizeBound: an oversized worker response must fail terminally
// with PartialSizeError instead of being buffered whole.
func TestPartialSizeBound(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(make([]byte, 4096))
	}))
	defer huge.Close()
	coord := &Coordinator{MaxPartialBytes: 1024, Policy: QueryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	_, err := coord.Query(context.Background(), []Target{{URL: huge.URL, Partition: "p"}}, q)
	var pe *PartialSizeError
	if !errors.As(err, &pe) {
		t.Fatalf("oversized partial = %v, want PartialSizeError", err)
	}
}

// TestLoadAllOrNothing: a JSON ingest batch with one invalid row must
// commit nothing and name the offending row index.
func TestLoadAllOrNothing(t *testing.T) {
	w := NewWorker()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	if err := cl.CreatePartition(context.Background(), "p", testSchema()); err != nil {
		t.Fatal(err)
	}
	err := cl.Load(context.Background(), "p",
		[][]uint32{{1, 1}, {999, 1}, {2, 2}},
		[][]float64{{1}, {2}, {3}})
	if err == nil {
		t.Fatal("batch with invalid row accepted")
	}
	if !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("error does not name the offending row: %v", err)
	}
	st, _ := w.Store("p")
	if n := st.Rows(); n != int64(0) {
		t.Fatalf("failed batch committed %d rows; ingest is not atomic", n)
	}
	// A valid batch still loads.
	if err := cl.Load(context.Background(), "p", [][]uint32{{1, 1}}, [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if n := st.Rows(); n != 1 {
		t.Fatalf("rows after valid batch = %d", n)
	}
}

// TestZeroPolicyIsBaseline: the zero QueryPolicy must mean one attempt, no
// hedging, exact semantics.
func TestZeroPolicyIsBaseline(t *testing.T) {
	var p QueryPolicy
	if !p.exact() || p.attempts() != 1 {
		t.Fatalf("zero policy: exact=%v attempts=%d", p.exact(), p.attempts())
	}
	var calls atomic.Int64
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := (&Coordinator{}).Query(context.Background(), []Target{{URL: failing.URL, Partition: "p"}}, q); err == nil {
		t.Fatal("baseline coordinator did not fail")
	}
	if calls.Load() != 1 {
		t.Fatalf("zero policy issued %d requests, want exactly 1", calls.Load())
	}
}

func TestBackoffAndJitter(t *testing.T) {
	p := QueryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	wants := []time.Duration{10, 20, 40, 40}
	for i, want := range wants {
		if got := p.backoffFor(i); got != want*time.Millisecond {
			t.Fatalf("backoffFor(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	for i := 0; i < 100; i++ {
		d := jitter(100 * time.Millisecond)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jitter out of [d/2, d]: %v", d)
		}
	}
	if jitter(0) != 0 {
		t.Fatal("jitter(0) != 0")
	}
}
