package netexec

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
)

func testSchema() brick.Schema {
	return brick.Schema{
		Dimensions: []brick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "app", Max: 20, Buckets: 4},
		},
		Metrics: []brick.Metric{{Name: "value"}},
	}
}

// startCluster spins n HTTP workers, each holding one partition of a table
// whose rows are split round-robin. Returns the targets and the expected
// whole-table store for comparison.
func startCluster(t *testing.T, n, rows int) ([]Target, *brick.Store, func()) {
	t.Helper()
	var targets []Target
	var servers []*httptest.Server
	var clients []*Client
	for i := 0; i < n; i++ {
		w := NewWorker()
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		cl := &Client{BaseURL: srv.URL}
		part := "t#" + string(rune('0'+i))
		if err := cl.CreatePartition(context.Background(), part, testSchema()); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		targets = append(targets, Target{URL: srv.URL, Partition: part})
	}
	whole, _ := brick.NewStore(testSchema())
	dimsPer := make([][][]uint32, n)
	metsPer := make([][][]float64, n)
	for i := 0; i < rows; i++ {
		dims := []uint32{uint32(i) % 30, uint32(i) % 20}
		mets := []float64{float64(i)}
		whole.Insert(dims, mets)
		w := i % n
		dimsPer[w] = append(dimsPer[w], dims)
		metsPer[w] = append(metsPer[w], mets)
	}
	for i := range clients {
		if err := clients[i].Load(context.Background(), targets[i].Partition, dimsPer[i], metsPer[i]); err != nil {
			t.Fatal(err)
		}
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return targets, whole, cleanup
}

func TestDistributedQueryEqualsLocal(t *testing.T) {
	targets, whole, cleanup := startCluster(t, 4, 1000)
	defer cleanup()
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value"},
			{Func: engine.Avg, Metric: "value"},
			{Func: engine.Count},
		},
		GroupBy: []string{"app"},
		Filter:  map[string][2]uint32{"ds": {0, 14}},
	}
	coord := &Coordinator{}
	got, err := coord.Query(context.Background(), targets, q)
	if err != nil {
		t.Fatal(err)
	}
	localPartial, err := engine.Execute(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	want := localPartial.Finalize()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if math.Abs(got.Rows[i][j]-want.Rows[i][j]) > 1e-9 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.RowsScanned != want.RowsScanned {
		t.Fatalf("rows scanned: %d vs %d", got.RowsScanned, want.RowsScanned)
	}
}

func TestWorkerFailureFailsQuery(t *testing.T) {
	targets, _, cleanup := startCluster(t, 3, 100)
	defer cleanup()
	// Point one target at a dead server.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	targets[1].URL = dead.URL
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	_, err := (&Coordinator{}).Query(context.Background(), targets, q)
	if !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("query with dead worker = %v, want ErrWorkerFailed", err)
	}
}

func TestUnknownPartitionFailsQuery(t *testing.T) {
	targets, _, cleanup := startCluster(t, 2, 10)
	defer cleanup()
	targets[0].Partition = "ghost"
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := (&Coordinator{}).Query(context.Background(), targets, q); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("query against missing partition = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	// A worker that hangs: cancellation must abort the query.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The bound keeps server shutdown fast even if the disconnect
		// signal is not delivered to the handler.
		select {
		case <-r.Context().Done():
		case <-time.After(time.Second):
		}
	}))
	defer slow.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	start := time.Now()
	_, err := (&Coordinator{}).Query(ctx, []Target{{URL: slow.URL, Partition: "p"}}, q)
	if err == nil {
		t.Fatal("hung worker did not fail the query")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not abort promptly")
	}
}

func TestCoordinatorNoTargets(t *testing.T) {
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := (&Coordinator{}).Query(context.Background(), nil, q); err == nil {
		t.Fatal("empty target list accepted")
	}
}

func TestWorkerAdminErrors(t *testing.T) {
	w := NewWorker()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	if err := cl.CreatePartition(context.Background(), "p", testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreatePartition(context.Background(), "p", testSchema()); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("duplicate partition = %v", err)
	}
	if err := cl.Load(context.Background(), "ghost", [][]uint32{{1, 1}}, [][]float64{{1}}); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("load into missing partition = %v", err)
	}
	// Invalid rows.
	if err := cl.Load(context.Background(), "p", [][]uint32{{999, 1}}, [][]float64{{1}}); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("out-of-domain row = %v", err)
	}
	// Bad query returns a 4xx that surfaces as a worker failure.
	q := &engine.Query{} // no aggregates: invalid
	if _, err := (&Coordinator{}).Query(context.Background(), []Target{{URL: srv.URL, Partition: "p"}}, q); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("invalid query = %v", err)
	}
	// Health endpoint.
	resp, err := http.Get(srv.URL + "/health")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %v, %v", resp, err)
	}
	resp.Body.Close()
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	s := testSchema()
	s2 := FromSchema(s).ToSchema()
	if len(s2.Dimensions) != len(s.Dimensions) || len(s2.Metrics) != len(s.Metrics) {
		t.Fatalf("round trip lost columns: %+v", s2)
	}
	for i := range s.Dimensions {
		if s2.Dimensions[i] != s.Dimensions[i] {
			t.Fatalf("dimension %d differs", i)
		}
	}
}

func TestWorkerPartitions(t *testing.T) {
	w := NewWorker()
	w.AddPartition("b", testSchema())
	w.AddPartition("a", testSchema())
	parts := w.Partitions()
	if len(parts) != 2 || parts[0] != "a" || parts[1] != "b" {
		t.Fatalf("Partitions = %v", parts)
	}
}

// TestWorkerCompactAll cools every partition's bricks and checks one pass
// walks all of them one rung down the tier ladder, summed across stores.
func TestWorkerCompactAll(t *testing.T) {
	w := NewWorker()
	total := 0
	for _, name := range []string{"a", "b"} {
		if err := w.AddPartition(name, testSchema()); err != nil {
			t.Fatal(err)
		}
		st, _ := w.Store(name)
		for i := 0; i < 200; i++ {
			if err := st.Insert([]uint32{uint32(i % 30), uint32(i % 20)},
				[]float64{float64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		st.DecayHotness(0)
		total += st.BrickCount()
	}
	cfg := brick.CompactionConfig{EncodeBelow: 1, EvictBelow: 1}
	stats, err := w.CompactAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Encoded != total || stats.Evicted != 0 {
		t.Fatalf("pass 1 stats = %+v, want %d encoded", stats, total)
	}
	stats, err = w.CompactAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evicted != total {
		t.Fatalf("pass 2 stats = %+v, want %d evicted", stats, total)
	}
	for _, name := range []string{"a", "b"} {
		st, _ := w.Store(name)
		if got := st.CompressedBrickCount(); got != st.BrickCount() {
			t.Fatalf("%s: %d of %d bricks compressed", name, got, st.BrickCount())
		}
	}
}
