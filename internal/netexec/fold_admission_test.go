package netexec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cubrick/internal/admission"
	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
)

// startFoldCluster is startCluster with scan folding enabled and a metrics
// registry per worker so tests can observe the fold counters.
func startFoldCluster(t *testing.T, n, rows int) ([]Target, []*Worker, *brick.Store, func()) {
	t.Helper()
	var targets []Target
	var workers []*Worker
	var servers []*httptest.Server
	whole, _ := brick.NewStore(testSchema())
	dimsPer := make([][][]uint32, n)
	metsPer := make([][][]float64, n)
	for i := 0; i < rows; i++ {
		dims := []uint32{uint32(i) % 30, uint32(i) % 20}
		mets := []float64{float64(i)}
		whole.Insert(dims, mets)
		w := i % n
		dimsPer[w] = append(dimsPer[w], dims)
		metsPer[w] = append(metsPer[w], mets)
	}
	for i := 0; i < n; i++ {
		w := NewWorker()
		w.FoldScans = true
		w.Metrics = metrics.NewRegistry()
		workers = append(workers, w)
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		cl := &Client{BaseURL: srv.URL}
		part := "t#" + string(rune('0'+i))
		if err := cl.CreatePartition(context.Background(), part, testSchema()); err != nil {
			t.Fatal(err)
		}
		if err := cl.Load(context.Background(), part, dimsPer[i], metsPer[i]); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, Target{URL: srv.URL, Partition: part})
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return targets, workers, whole, cleanup
}

// TestFoldedDistributedEqualsLocal: routing worker execution through the
// scan scheduler must not change results.
func TestFoldedDistributedEqualsLocal(t *testing.T) {
	targets, workers, whole, cleanup := startFoldCluster(t, 3, 900)
	defer cleanup()
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value"},
			{Func: engine.Count},
		},
		GroupBy: []string{"app"},
		Filter:  map[string][2]uint32{"ds": {0, 14}},
	}
	coord := &Coordinator{}
	got, err := coord.Query(context.Background(), targets, q)
	if err != nil {
		t.Fatal(err)
	}
	localPartial, err := engine.Execute(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	want := localPartial.Finalize()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if math.Abs(got.Rows[i][j]-want.Rows[i][j]) > 1e-9 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.RowsScanned != want.RowsScanned {
		t.Fatalf("rows scanned: %d vs %d", got.RowsScanned, want.RowsScanned)
	}
	// Every worker executed through the scheduler (solo pass, nothing
	// concurrent to fold with).
	for i, w := range workers {
		if w.Metrics.CounterValues()["engine.fold.solo"] != 1 {
			t.Fatalf("worker %d fold.solo = %d, want 1",
				i, w.Metrics.CounterValues()["engine.fold.solo"])
		}
	}
}

func postPartial(t *testing.T, url, partition string, q *engine.Query, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]any{"partition": partition, "query": q})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/partial", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFoldHeaderOffBypassesScheduler: X-Cubrick-Fold: off must take the
// pre-scheduler solo path, leaving the fold counters untouched.
func TestFoldHeaderOffBypassesScheduler(t *testing.T) {
	targets, workers, _, cleanup := startFoldCluster(t, 1, 200)
	defer cleanup()
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}

	resp := postPartial(t, targets[0].URL, targets[0].Partition, q, map[string]string{HeaderFold: "off"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fold-off partial status %d", resp.StatusCode)
	}
	if got := workers[0].Metrics.CounterValues()["engine.fold.solo"]; got != 0 {
		t.Fatalf("fold.solo = %d after fold-off request, want 0", got)
	}

	resp = postPartial(t, targets[0].URL, targets[0].Partition, q, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial status %d", resp.StatusCode)
	}
	if got := workers[0].Metrics.CounterValues()["engine.fold.solo"]; got != 1 {
		t.Fatalf("fold.solo = %d after scheduled request, want 1", got)
	}
}

// TestWorkerShedReturns429: a full admission queue sheds with 429, which
// the resilience policy classifies retryable, and counts query.shed.
func TestWorkerShedReturns429(t *testing.T) {
	targets, workers, _, cleanup := startFoldCluster(t, 1, 100)
	defer cleanup()
	w := workers[0]
	w.Admission = admission.New(admission.Config{MaxConcurrent: 1, QueueDepth: 0, Metrics: w.Metrics})

	// Occupy the only slot so the next request sheds immediately.
	tkt, err := w.Admission.Admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	resp := postPartial(t, targets[0].URL, targets[0].Partition, q, map[string]string{HeaderTenant: "acme"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if got := w.Metrics.CounterValues()["query.shed"]; got != 1 {
		t.Fatalf("query.shed = %d, want 1", got)
	}
	// The coordinator-side classification of that status is retryable, so
	// PR-3's policy will retry or fail over shed partials.
	if ClassifyError(&HTTPStatusError{Status: http.StatusTooManyRequests}) != Retryable {
		t.Fatal("429 must classify retryable")
	}
	tkt.Release()

	// With the slot free the same request succeeds.
	resp = postPartial(t, targets[0].URL, targets[0].Partition, q, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp.StatusCode)
	}
}

// TestCoordinatorAdmissionShed: coordinator-level admission sheds whole
// queries with ErrQueueFull and counts netexec.query.shed.
func TestCoordinatorAdmissionShed(t *testing.T) {
	targets, _, _, cleanup := startFoldCluster(t, 1, 100)
	defer cleanup()
	reg := metrics.NewRegistry()
	coord := &Coordinator{
		Metrics:   reg,
		Admission: admission.New(admission.Config{MaxConcurrent: 1, QueueDepth: 0, Metrics: reg}),
	}
	tkt, err := coord.Admission.Admit(context.Background(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := coord.Query(context.Background(), targets, q); !errors.Is(err, admission.ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := reg.CounterValues()["netexec.query.shed"]; got != 1 {
		t.Fatalf("netexec.query.shed = %d, want 1", got)
	}
	tkt.Release()
	if _, err := coord.Query(context.Background(), targets, q); err != nil {
		t.Fatalf("post-release query: %v", err)
	}
}

// TestCoordinatorPropagatesAdmissionHeaders: tenant/priority from the
// request context and the coordinator's NoFold switch must reach workers
// as headers.
func TestCoordinatorPropagatesAdmissionHeaders(t *testing.T) {
	targets, _, _, cleanup := startFoldCluster(t, 1, 100)
	defer cleanup()

	// Wrap the worker with a header-capturing proxy.
	var mu sync.Mutex
	var captured http.Header
	inner := targets[0].URL
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/partial" {
			mu.Lock()
			captured = r.Header.Clone()
			mu.Unlock()
		}
		var body bytes.Buffer
		body.ReadFrom(r.Body)
		req, _ := http.NewRequest(r.Method, inner+r.URL.Path, &body)
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(resp.StatusCode)
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		rw.Write(out.Bytes())
	}))
	defer proxy.Close()

	coord := &Coordinator{NoFold: true}
	ctx := admission.WithMeta(context.Background(), admission.Meta{Tenant: "acme", Priority: 3})
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	if _, err := coord.Query(ctx, []Target{{URL: proxy.URL, Partition: targets[0].Partition}}, q); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if captured == nil {
		t.Fatal("no /partial request captured")
	}
	if got := captured.Get(HeaderTenant); got != "acme" {
		t.Fatalf("%s = %q, want acme", HeaderTenant, got)
	}
	if got := captured.Get(HeaderPriority); got != "3" {
		t.Fatalf("%s = %q, want 3", HeaderPriority, got)
	}
	if got := captured.Get(HeaderFold); got != "off" {
		t.Fatalf("%s = %q, want off", HeaderFold, got)
	}
}
