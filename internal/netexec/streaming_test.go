package netexec

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/randutil"
)

// TestFailFastCancelsPeers pins the satellite fix: a failed worker must
// fail the query immediately and cancel the in-flight peers instead of
// waiting for the whole fan-out to drain.
func TestFailFastCancelsPeers(t *testing.T) {
	var stalledCanceled atomic.Bool
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can observe the
		// client disconnect and cancel the request context.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			stalledCanceled.Store(true)
		case <-time.After(30 * time.Second):
		}
	}))
	defer stalled.Close()
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}))
	defer failing.Close()

	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	targets := []Target{
		{URL: stalled.URL, Partition: "p0"},
		{URL: failing.URL, Partition: "p1"},
	}
	start := time.Now()
	_, err := (&Coordinator{}).Query(context.Background(), targets, q)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("query = %v, want ErrWorkerFailed", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("failure took %v: coordinator waited for the stalled peer", elapsed)
	}
	// The stalled request's context must be canceled shortly after Query
	// returns (Query's deferred cancel aborts the in-flight fetch).
	deadline := time.Now().Add(3 * time.Second)
	for !stalledCanceled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("stalled peer request was never canceled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoadBinEqualsJSON(t *testing.T) {
	w := NewWorker()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	for _, part := range []string{"json", "bin"} {
		if err := cl.CreatePartition(context.Background(), part, testSchema()); err != nil {
			t.Fatal(err)
		}
	}
	const rows = 777
	dims := make([][]uint32, rows)
	mets := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i*3) % 20}
		mets[i] = []float64{float64(i) / 2}
	}
	if err := cl.Load(context.Background(), "json", dims, mets); err != nil {
		t.Fatal(err)
	}
	if err := cl.LoadBin(context.Background(), "bin", dims, mets); err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value"},
			{Func: engine.Count},
			{Func: engine.Min, Metric: "value"},
			{Func: engine.Max, Metric: "value"},
		},
		GroupBy: []string{"app"},
	}
	coord := &Coordinator{}
	a, err := coord.Query(context.Background(), []Target{{URL: srv.URL, Partition: "json"}}, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coord.Query(context.Background(), []Target{{URL: srv.URL, Partition: "bin"}}, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) || a.RowsScanned != b.RowsScanned {
		t.Fatalf("shape differs: %d/%d rows, %d/%d scanned", len(a.Rows), len(b.Rows), a.RowsScanned, b.RowsScanned)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestLoadBinErrors(t *testing.T) {
	w := NewWorker()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	if err := cl.CreatePartition(context.Background(), "p", testSchema()); err != nil {
		t.Fatal(err)
	}
	// Unknown partition.
	if err := cl.LoadBin(context.Background(), "ghost", [][]uint32{{1, 1}}, [][]float64{{1}}); !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("load into missing partition = %v", err)
	}
	// Corrupt blob straight at the endpoint.
	resp, err := http.Post(srv.URL+"/loadbin", "application/octet-stream", bytes.NewReader([]byte("not a batch")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt blob status = %d", resp.StatusCode)
	}
	// Out-of-domain row: the whole batch must be rejected atomically.
	err = cl.LoadBin(context.Background(), "p", [][]uint32{{1, 1}, {999, 1}}, [][]float64{{1}, {2}})
	if !errors.Is(err, ErrWorkerFailed) {
		t.Fatalf("out-of-domain batch = %v", err)
	}
	st, err := w.Store("p")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows() != 0 {
		t.Fatalf("rejected batch left %d rows behind", st.Rows())
	}
	// Ragged input is rejected client-side before any bytes move.
	if err := cl.LoadBin(context.Background(), "p", [][]uint32{{1, 1}, {2}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

func TestBatchWireRoundTrip(t *testing.T) {
	dims := [][]uint32{{1, 2}, {3, 4}, {5, 6}}
	mets := [][]float64{{1.5}, {-2.25}, {0}}
	blob, err := EncodeBatch("t#0", dims, mets)
	if err != nil {
		t.Fatal(err)
	}
	part, dimCols, metricCols, rows, err := DecodeBatch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if part != "t#0" || rows != 3 || len(dimCols) != 2 || len(metricCols) != 1 {
		t.Fatalf("decode = %q, %d rows, %d/%d cols", part, rows, len(dimCols), len(metricCols))
	}
	for r := 0; r < rows; r++ {
		for d := range dimCols {
			if dimCols[d][r] != dims[r][d] {
				t.Fatalf("dim[%d][%d] = %d, want %d", d, r, dimCols[d][r], dims[r][d])
			}
		}
		if metricCols[0][r] != mets[r][0] {
			t.Fatalf("metric[%d] = %v, want %v", r, metricCols[0][r], mets[r][0])
		}
	}
	// Empty batch round trip.
	blob, err = EncodeBatch("empty", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, rows, err = DecodeBatch(blob); err != nil || rows != 0 {
		t.Fatalf("empty batch decode = %d rows, %v", rows, err)
	}
	// Truncation and forged headers must be rejected.
	full, _ := EncodeBatch("t", dims, mets)
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, _, err := DecodeBatch(full[:cut]); err == nil {
			t.Fatalf("truncated batch at %d accepted", cut)
		}
	}
	if _, _, _, _, err := DecodeBatch(append(full, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestPartialGzipAndContentLength covers two satellites: /partial sets
// Content-Length, and large blobs gzip when the client accepts it.
func TestPartialGzipAndContentLength(t *testing.T) {
	w := NewWorker()
	w.GzipMinBytes = 64 // force compression of modest partials
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	if err := cl.CreatePartition(context.Background(), "p", testSchema()); err != nil {
		t.Fatal(err)
	}
	var dims [][]uint32
	var mets [][]float64
	for i := 0; i < 600; i++ {
		dims = append(dims, []uint32{uint32(i) % 30, uint32(i) % 20})
		mets = append(mets, []float64{float64(i)})
	}
	if err := cl.LoadBin(context.Background(), "p", dims, mets); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"partition":"p","query":{"Aggregates":[{"Func":0,"Metric":"value"}],"GroupBy":["ds","app"]}}`)

	do := func(acceptEncoding string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/partial", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept-Encoding", acceptEncoding)
		resp, err := http.DefaultTransport.RoundTrip(req) // no transparent gzip
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Identity: raw blob with exact Content-Length.
	resp := do("identity")
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity request got Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(raw)) {
		t.Fatalf("Content-Length %q, body %d bytes", cl, len(raw))
	}

	// Gzip: compressed on the wire, identical blob after decompression.
	resp = do("gzip")
	zbody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("large partial not gzipped for a gzip-accepting client")
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(zbody)) {
		t.Fatalf("gzip Content-Length %q, body %d bytes", cl, len(zbody))
	}
	zr, err := gzip.NewReader(bytes.NewReader(zbody))
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// Wire partials are not byte-canonical (groups serialize in map
	// order), so compare the decoded, finalized results instead of bytes.
	q := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value"}},
		GroupBy:    []string{"ds", "app"},
	}
	pRaw, err := engine.UnmarshalPartial(q, raw)
	if err != nil {
		t.Fatal(err)
	}
	pZip, err := engine.UnmarshalPartial(q, unzipped)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(pRaw.Finalize(), pZip.Finalize()); err != nil {
		t.Fatalf("gzip round trip changed the partial: %v", err)
	}

	// And the full coordinator path works against a gzipping worker.
	if _, err := (&Coordinator{}).Query(context.Background(), []Target{{URL: srv.URL, Partition: "p"}}, q); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingMergeEqualsBarrier is the acceptance property test: over
// random schemas, data distributions and queries, the streaming
// MergeWire-based coordinator must produce exactly the Result the old
// barrier path (fetch all, UnmarshalPartial each, Merge serially,
// Finalize) produces — including CountDistinct rows backed by HLL
// sketches, which must merge register-identically in any arrival order.
func TestStreamingMergeEqualsBarrier(t *testing.T) {
	rnd := randutil.New(20260805)
	aggFuncs := []engine.AggFunc{engine.Sum, engine.Count, engine.Min, engine.Max, engine.Avg, engine.CountDistinct}
	for trial := 0; trial < 20; trial++ {
		nDims := 1 + rnd.Intn(3)
		schema := brick.Schema{}
		for d := 0; d < nDims; d++ {
			max := uint32(2 + rnd.Intn(30))
			schema.Dimensions = append(schema.Dimensions, brick.Dimension{
				Name: fmt.Sprintf("d%d", d), Max: max, Buckets: uint32(1 + rnd.Intn(int(max))),
			})
		}
		nMetrics := rnd.Intn(3)
		for m := 0; m < nMetrics; m++ {
			schema.Metrics = append(schema.Metrics, brick.Metric{Name: fmt.Sprintf("m%d", m)})
		}

		nWorkers := 2 + rnd.Intn(5)
		var targets []Target
		var servers []*httptest.Server
		var locals []*brick.Store
		for i := 0; i < nWorkers; i++ {
			w := NewWorker()
			w.GzipMinBytes = 128 // exercise compressed partials too
			srv := httptest.NewServer(w.Handler())
			servers = append(servers, srv)
			part := fmt.Sprintf("t#%d", i)
			if err := (&Client{BaseURL: srv.URL}).CreatePartition(context.Background(), part, schema); err != nil {
				t.Fatal(err)
			}
			targets = append(targets, Target{URL: srv.URL, Partition: part})
			local, err := brick.NewStore(schema)
			if err != nil {
				t.Fatal(err)
			}
			locals = append(locals, local)
		}
		rows := rnd.Intn(800)
		perWorkerDims := make([][][]uint32, nWorkers)
		perWorkerMets := make([][][]float64, nWorkers)
		for r := 0; r < rows; r++ {
			dims := make([]uint32, nDims)
			for d := range dims {
				dims[d] = uint32(rnd.Intn(int(schema.Dimensions[d].Max)))
			}
			mets := make([]float64, nMetrics)
			for m := range mets {
				mets[m] = float64(rnd.Intn(1<<16)) / 4 // dyadic: exact sums
			}
			wi := r % nWorkers
			perWorkerDims[wi] = append(perWorkerDims[wi], dims)
			perWorkerMets[wi] = append(perWorkerMets[wi], mets)
		}
		for i := 0; i < nWorkers; i++ {
			if err := (&Client{BaseURL: servers[i].URL}).LoadBin(context.Background(), targets[i].Partition, perWorkerDims[i], perWorkerMets[i]); err != nil {
				t.Fatal(err)
			}
			if err := locals[i].InsertBatchRows(perWorkerDims[i], perWorkerMets[i]); err != nil {
				t.Fatal(err)
			}
		}

		q := &engine.Query{}
		nAggs := 1 + rnd.Intn(3)
		for a := 0; a < nAggs; a++ {
			f := aggFuncs[rnd.Intn(len(aggFuncs))]
			if nMetrics == 0 && f != engine.Count && f != engine.CountDistinct {
				f = engine.CountDistinct
			}
			agg := engine.Aggregate{Func: f, Alias: fmt.Sprintf("a%d", a)}
			switch f {
			case engine.Count:
			case engine.CountDistinct:
				agg.Metric = schema.Dimensions[rnd.Intn(nDims)].Name
			default:
				agg.Metric = schema.Metrics[rnd.Intn(nMetrics)].Name
			}
			q.Aggregates = append(q.Aggregates, agg)
		}
		for _, d := range rnd.Perm(nDims)[:rnd.Intn(nDims+1)] {
			q.GroupBy = append(q.GroupBy, schema.Dimensions[d].Name)
		}
		if rnd.Bernoulli(0.5) {
			d := schema.Dimensions[rnd.Intn(nDims)]
			lo := uint32(rnd.Intn(int(d.Max)))
			hi := lo + uint32(rnd.Intn(int(d.Max-lo)))
			q.Filter = map[string][2]uint32{d.Name: {lo, hi}}
		}

		// Barrier reference: execute each partition locally, round-trip
		// every partial through the wire format, merge serially in partition
		// order — the exact pre-streaming coordinator algorithm.
		barrier := engine.NewPartial(q)
		for i := 0; i < nWorkers; i++ {
			p, err := engine.ExecuteParallel(locals[i], q)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := p.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			rp, err := engine.UnmarshalPartial(q, blob)
			if err != nil {
				t.Fatal(err)
			}
			if err := barrier.Merge(rp); err != nil {
				t.Fatal(err)
			}
		}
		want := barrier.Finalize()

		got, err := (&Coordinator{}).Query(context.Background(), targets, q)
		if err != nil {
			t.Fatal(err)
		}
		if err := resultsEqual(want, got); err != nil {
			t.Fatalf("trial %d (%d workers, %d rows, groupby %v, filter %v): %v",
				trial, nWorkers, rows, q.GroupBy, q.Filter, err)
		}
		for _, s := range servers {
			s.Close()
		}
	}
}

// resultsEqual is exact equality over finalized results, including the
// scan counters — CountDistinct values come from merged HLL sketches, so
// equality here means the sketches merged bit-identically.
func resultsEqual(a, b *engine.Result) error {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("columns %v vs %v", a.Columns, b.Columns)
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d: %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if a.RowsScanned != b.RowsScanned || a.BricksVisited != b.BricksVisited ||
		a.BricksPruned != b.BricksPruned || a.Decompressions != b.Decompressions {
		return fmt.Errorf("counters (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.RowsScanned, a.BricksVisited, a.BricksPruned, a.Decompressions,
			b.RowsScanned, b.BricksVisited, b.BricksPruned, b.Decompressions)
	}
	return nil
}
