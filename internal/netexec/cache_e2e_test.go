package netexec

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cubrick/internal/engine"
	"cubrick/internal/rescache"
)

// countingHandler wraps a worker handler and counts /partial requests so
// tests can assert that a result-cache hit produced zero fan-out.
func countingHandler(h http.Handler, partials *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/partial") {
			partials.Add(1)
		}
		h.ServeHTTP(rw, r)
	})
}

// startCachingCluster spins n workers (brick + decoded caches enabled) behind
// counting handlers and a coordinator with a result cache, loading rows
// round-robin through Cluster.Load so the coordinator learns ingest epochs.
func startCachingCluster(t *testing.T, n, rows int) (*Cluster, *atomic.Int64, func()) {
	t.Helper()
	var partials atomic.Int64
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		w.BrickCacheBytes = 4 << 20
		w.DecodedCacheBytes = 4 << 20
		srv := httptest.NewServer(countingHandler(w.Handler(), &partials))
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	cluster, err := NewCluster(urls, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Coordinator().ResultCache = rescache.New(16 << 20)
	ctx := context.Background()
	if err := cluster.CreateTable(ctx, "events", testSchema(), n); err != nil {
		t.Fatal(err)
	}
	dims := make([][]uint32, rows)
	mets := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
	}
	if err := cluster.Load(ctx, "events", dims, mets); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return cluster, &partials, cleanup
}

// TestResultCacheHitZeroFanout: a repeated query must be answered entirely
// from the coordinator's result cache — identical rows, no /partial traffic —
// and ingest through the coordinator must invalidate it exactly.
func TestResultCacheHitZeroFanout(t *testing.T) {
	cluster, partials, cleanup := startCachingCluster(t, 3, 900)
	defer cleanup()
	ctx := context.Background()
	coord := cluster.Coordinator()
	targets, err := cluster.Targets("events")
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value"}, {Func: engine.Count}},
		GroupBy:    []string{"app"},
	}

	cold, err := coord.Query(ctx, targets, q)
	if err != nil {
		t.Fatal(err)
	}
	coldFanout := partials.Load()
	if coldFanout == 0 {
		t.Fatal("cold query produced no fan-out")
	}

	warm, err := coord.Query(ctx, targets, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := partials.Load(); got != coldFanout {
		t.Fatalf("warm query fanned out: %d partial requests after hit (was %d)", got, coldFanout)
	}
	if err := resultRowsEqual(cold, warm); err != nil {
		t.Fatalf("cached result differs: %v", err)
	}
	st := coord.ResultCache.Stats()
	if st.Hits != 1 {
		t.Fatalf("result cache hits = %d, want 1", st.Hits)
	}

	// Ingest through the coordinator bumps the partitions' epochs; the next
	// query must detect the stale vector, fan out again, and see the new row.
	if err := cluster.Load(ctx, "events", [][]uint32{{0, 0}}, [][]float64{{1e6}}); err != nil {
		t.Fatal(err)
	}
	fresh, err := coord.Query(ctx, targets, q)
	if err != nil {
		t.Fatal(err)
	}
	if partials.Load() == coldFanout {
		t.Fatal("post-ingest query served from cache — stale result")
	}
	// Column 0 is the "app" group key; column 1 is sum(value).
	var coldSum, freshSum float64
	for _, r := range cold.Rows {
		coldSum += r[1]
	}
	for _, r := range fresh.Rows {
		freshSum += r[1]
	}
	if freshSum != coldSum+1e6 {
		t.Fatalf("post-ingest sum %v, want %v", freshSum, coldSum+1e6)
	}
}

// TestResultCacheResidueE2E: two queries sharing a fold key but differing
// in residue (LIMIT) must occupy distinct cache entries — the LIMIT 2
// answer may never be served for the LIMIT 20 query or vice versa.
func TestResultCacheResidueE2E(t *testing.T) {
	cluster, _, cleanup := startCachingCluster(t, 2, 600)
	defer cleanup()
	ctx := context.Background()
	coord := cluster.Coordinator()
	targets, err := cluster.Targets("events")
	if err != nil {
		t.Fatal(err)
	}
	base := engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value"}},
		GroupBy:    []string{"app"},
		OrderBy:    "sum(value)",
		Desc:       true,
	}
	small, big := base, base
	small.Limit = 2
	big.Limit = 20
	if engine.FoldKey(&small) != engine.FoldKey(&big) {
		t.Fatal("test premise broken: LIMIT variants should share a fold key")
	}

	smallRes, err := coord.Query(ctx, targets, &small)
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := coord.Query(ctx, targets, &big)
	if err != nil {
		t.Fatal(err)
	}
	if len(smallRes.Rows) != 2 || len(bigRes.Rows) != 20 {
		t.Fatalf("row counts %d/%d, want 2/20", len(smallRes.Rows), len(bigRes.Rows))
	}
	// Replay both from cache; lengths must still differ.
	smallRes2, err := coord.Query(ctx, targets, &small)
	if err != nil {
		t.Fatal(err)
	}
	bigRes2, err := coord.Query(ctx, targets, &big)
	if err != nil {
		t.Fatal(err)
	}
	if len(smallRes2.Rows) != 2 || len(bigRes2.Rows) != 20 {
		t.Fatalf("cached row counts %d/%d, want 2/20 — residue collision", len(smallRes2.Rows), len(bigRes2.Rows))
	}
	if st := coord.ResultCache.Stats(); st.Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.Hits)
	}
}

// TestCacheBypassHeader: WithCacheBypass must skip the result cache on the
// coordinator and disable worker caches for that request, while leaving the
// cached entry intact for later non-bypassed queries.
func TestCacheBypassHeader(t *testing.T) {
	cluster, partials, cleanup := startCachingCluster(t, 2, 400)
	defer cleanup()
	ctx := context.Background()
	coord := cluster.Coordinator()
	targets, err := cluster.Targets("events")
	if err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}

	first, err := coord.Query(ctx, targets, q)
	if err != nil {
		t.Fatal(err)
	}
	base := partials.Load()

	// Bypassed: must fan out despite the warm entry, and not disturb it.
	bypassed, err := coord.Query(WithCacheBypass(ctx), targets, q)
	if err != nil {
		t.Fatal(err)
	}
	if partials.Load() == base {
		t.Fatal("bypassed query did not fan out")
	}
	if err := resultRowsEqual(first, bypassed); err != nil {
		t.Fatalf("bypassed result differs: %v", err)
	}

	// The original entry must still serve hits.
	afterBypass := partials.Load()
	if _, err := coord.Query(ctx, targets, q); err != nil {
		t.Fatal(err)
	}
	if partials.Load() != afterBypass {
		t.Fatal("entry lost after bypass: follow-up query fanned out")
	}
	if st := coord.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

func resultRowsEqual(a, b *engine.Result) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return fmt.Errorf("row %d widths %d vs %d", i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}
