// Worker-side shard transfer plane: the HTTP surface the migration driver
// (internal/migrate) uses to move a partition between workers online. The
// protocol is the paper's §IV-E handoff made concrete: snapshot-ship the
// partition over the brick transfer format, tail live ingest with
// epoch-bounded deltas, fence the source for a bounded cutover pause, flip
// ownership, and drop the source copy after the dual-read window. Every
// endpoint is idempotent so a driver that crashed mid-step can blindly
// re-issue the request it may or may not have completed.
package netexec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"cubrick/internal/brick"
)

// exportChunkBytes is the pacing granularity of rate-limited exports.
const exportChunkBytes = 64 << 10

// fencedMsg is the body of the 503 a fenced partition returns to ingest.
// The migration driver fences the source during the cutover pause; loaders
// classify the 503 as retryable and re-send once ownership has flipped, so
// a bounded pause costs ingest latency, never rows.
const fencedMsg = "partition fenced for migration"

// Fence marks a partition as closed to ingest (on=true) or reopens it.
// Reads keep working — queries during the cutover pause are served by the
// fenced source until the ownership flip propagates. Fencing an unknown
// partition fails; unfencing one is a no-op so an abort path can always
// roll the fence back.
func (w *Worker) Fence(partition string, on bool) error {
	if on {
		if _, err := w.Store(partition); err != nil {
			return err
		}
	}
	w.fenceMu.Lock()
	defer w.fenceMu.Unlock()
	if w.fenced == nil {
		w.fenced = make(map[string]bool)
	}
	if on {
		w.fenced[partition] = true
	} else {
		delete(w.fenced, partition)
	}
	return nil
}

// IsFenced reports whether a partition currently rejects ingest.
func (w *Worker) IsFenced(partition string) bool {
	w.fenceMu.Lock()
	defer w.fenceMu.Unlock()
	return w.fenced[partition]
}

// RemovePartition drops a partition's store, scan scheduler and fence
// flag. Removing an absent partition reports false without error — the
// migration driver's drop step must be safely re-runnable.
func (w *Worker) RemovePartition(name string) bool {
	w.mu.Lock()
	st, ok := w.stores[name]
	delete(w.stores, name)
	w.mu.Unlock()
	if !ok {
		return false
	}
	w.schedMu.Lock()
	delete(w.scheds, st)
	w.schedMu.Unlock()
	w.fenceMu.Lock()
	delete(w.fenced, name)
	w.fenceMu.Unlock()
	return true
}

// registerMigration wires the transfer-plane endpoints onto the worker
// mux.
func (w *Worker) registerMigration(mux *http.ServeMux) {
	mux.HandleFunc("/export", func(rw http.ResponseWriter, r *http.Request) {
		partition := r.URL.Query().Get("partition")
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			since, err = strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(rw, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		blob, covered, err := st.ExportSince(since)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set(HeaderEpoch, strconv.FormatUint(covered, 10))
		rw.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.countAdd("worker.export.requests", 1)
		w.countAdd("worker.export.bytes", int64(len(blob)))
		w.writePaced(r.Context(), rw, blob)
	})
	mux.HandleFunc("/import", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		partition := r.URL.Query().Get("partition")
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		blob, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		gained, err := st.ImportBricks(blob)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		// The driver forwards the source's covered epoch so the target's
		// epoch line continues where the source's left off; without this a
		// freshly copied store would restart near zero and look staler than
		// cached results pinned to the source's epochs.
		if e, ok := epochFromHeader(r.Header); ok {
			st.AdvanceEpochTo(e)
		}
		rw.Header().Set(HeaderEpoch, strconv.FormatUint(st.Epoch(), 10))
		w.countAdd("worker.import.requests", 1)
		w.countAdd("worker.import.rows", gained)
		fmt.Fprintf(rw, `{"rows":%d}`, gained)
	})
	mux.HandleFunc("/fence", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		partition := r.URL.Query().Get("partition")
		on := r.URL.Query().Get("fenced") != "false"
		if err := w.Fence(partition, on); err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(rw, `{"partition":%q,"fenced":%v}`, partition, on)
	})
	mux.HandleFunc("/droppart", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		partition := r.URL.Query().Get("partition")
		dropped := w.RemovePartition(partition)
		if dropped {
			w.countAdd("worker.droppart.count", 1)
		}
		fmt.Fprintf(rw, `{"dropped":%v}`, dropped)
	})
	mux.HandleFunc("/schema", func(rw http.ResponseWriter, r *http.Request) {
		partition := r.URL.Query().Get("partition")
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(FromSchema(st.Schema()))
	})
	mux.HandleFunc("/epoch", func(rw http.ResponseWriter, r *http.Request) {
		partition := r.URL.Query().Get("partition")
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		e := st.Epoch()
		rw.Header().Set(HeaderEpoch, strconv.FormatUint(e, 10))
		fmt.Fprintf(rw, `{"epoch":%d,"rows":%d}`, e, st.Rows())
	})
}

// writePaced writes blob to rw, throttled to ExportRateBytes per second in
// exportChunkBytes chunks when a rate is configured. Pacing bounds the
// network and lock pressure a migration puts on a loaded source worker —
// DynaHash's cost model: moved bytes are paid at a controlled rate.
func (w *Worker) writePaced(ctx context.Context, rw http.ResponseWriter, blob []byte) {
	rate := w.ExportRateBytes
	if rate <= 0 {
		rw.Write(blob)
		return
	}
	chunkDelay := time.Duration(float64(exportChunkBytes) / float64(rate) * float64(time.Second))
	for off := 0; off < len(blob); off += exportChunkBytes {
		end := off + exportChunkBytes
		if end > len(blob) {
			end = len(blob)
		}
		if _, err := rw.Write(blob[off:end]); err != nil {
			return
		}
		if end < len(blob) {
			if f, ok := rw.(http.Flusher); ok {
				f.Flush()
			}
			select {
			case <-time.After(chunkDelay):
			case <-ctx.Done():
				return
			}
		}
	}
}

// --- client side -----------------------------------------------------------

// get issues a GET and returns the body and headers; non-2xx statuses come
// back as a classified *HTTPStatusError like the POST path.
func (cl *Client) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, resp.Header, fmt.Errorf("%w: %s: %w", ErrWorkerFailed, path,
			&HTTPStatusError{Status: resp.StatusCode, Msg: string(msg)})
	}
	body, err := io.ReadAll(resp.Body)
	return body, resp.Header, err
}

// Export fetches a partition's transfer blob covering epochs in (since,
// covered] and returns it with the covered epoch.
func (cl *Client) Export(ctx context.Context, partition string, since uint64) ([]byte, uint64, error) {
	path := "/export?partition=" + url.QueryEscape(partition) + "&since=" + strconv.FormatUint(since, 10)
	blob, hdr, err := cl.get(ctx, path)
	if err != nil {
		return nil, 0, err
	}
	covered, _ := epochFromHeader(hdr)
	return blob, covered, nil
}

// ImportBricks merges a transfer blob into a partition on the worker and
// advances the partition's epoch line to at least advanceTo (0 skips the
// advance). Returns the rows the partition gained.
func (cl *Client) ImportBricks(ctx context.Context, partition string, blob []byte, advanceTo uint64) (int64, error) {
	path := cl.BaseURL + "/import?partition=" + url.QueryEscape(partition)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, path, bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if advanceTo > 0 {
		req.Header.Set(HeaderEpoch, strconv.FormatUint(advanceTo, 10))
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("%w: /import: %w", ErrWorkerFailed,
			&HTTPStatusError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))})
	}
	var out struct {
		Rows int64 `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.Rows, nil
}

// Fence toggles a partition's ingest fence on the worker.
func (cl *Client) Fence(ctx context.Context, partition string, on bool) error {
	path := "/fence?partition=" + url.QueryEscape(partition) + "&fenced=" + strconv.FormatBool(on)
	_, err := cl.do(ctx, path, "application/json", nil)
	return err
}

// DropPartition removes a partition from the worker (idempotent).
func (cl *Client) DropPartition(ctx context.Context, partition string) error {
	_, err := cl.do(ctx, "/droppart?partition="+url.QueryEscape(partition), "application/json", nil)
	return err
}

// PartitionSchema fetches a partition's schema — what a migration driver
// needs to create the same partition on the target worker.
func (cl *Client) PartitionSchema(ctx context.Context, partition string) (brick.Schema, error) {
	body, _, err := cl.get(ctx, "/schema?partition="+url.QueryEscape(partition))
	if err != nil {
		return brick.Schema{}, err
	}
	var sj SchemaJSON
	if err := json.Unmarshal(body, &sj); err != nil {
		return brick.Schema{}, err
	}
	return sj.ToSchema(), nil
}

// PartitionEpoch reads a partition's current ingest epoch and row count.
func (cl *Client) PartitionEpoch(ctx context.Context, partition string) (uint64, int64, error) {
	body, _, err := cl.get(ctx, "/epoch?partition="+url.QueryEscape(partition))
	if err != nil {
		return 0, 0, err
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
		Rows  int64  `json:"rows"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, 0, err
	}
	return out.Epoch, out.Rows, nil
}
