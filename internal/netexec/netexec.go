// Package netexec is the networked data plane: Cubrick's scatter-gather
// over real HTTP instead of in-process calls. A Worker serves partition
// stores (ingest and partial-query execution) over HTTP; a Coordinator
// fans a query out to the workers holding the table's partitions, merges
// the returned wire partials and finalizes — exactly the paper's execution
// flow ("Each node eventually returns a partial result, which are merged
// and materialized on a query coordinator node"), with partials crossing a
// real network boundary.
//
// The data plane is built for fan-out: partials stream into the
// coordinator's accumulator as they arrive (no barrier, first failure
// cancels the peers), wire blobs fold in via engine.MergeWire without an
// intermediate Partial, and bulk ingest ships packed columnar batches to
// POST /loadbin instead of per-row JSON.
package netexec

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
)

// SchemaJSON is the wire form of a brick schema.
type SchemaJSON struct {
	Dimensions []struct {
		Name    string `json:"name"`
		Max     uint32 `json:"max"`
		Buckets uint32 `json:"buckets"`
	} `json:"dimensions"`
	Metrics []struct {
		Name string `json:"name"`
	} `json:"metrics"`
}

// ToSchema converts the wire form.
func (sj SchemaJSON) ToSchema() brick.Schema {
	var s brick.Schema
	for _, d := range sj.Dimensions {
		s.Dimensions = append(s.Dimensions, brick.Dimension{Name: d.Name, Max: d.Max, Buckets: d.Buckets})
	}
	for _, m := range sj.Metrics {
		s.Metrics = append(s.Metrics, brick.Metric{Name: m.Name})
	}
	return s
}

// FromSchema converts to the wire form.
func FromSchema(s brick.Schema) SchemaJSON {
	var sj SchemaJSON
	for _, d := range s.Dimensions {
		sj.Dimensions = append(sj.Dimensions, struct {
			Name    string `json:"name"`
			Max     uint32 `json:"max"`
			Buckets uint32 `json:"buckets"`
		}{d.Name, d.Max, d.Buckets})
	}
	for _, m := range s.Metrics {
		sj.Metrics = append(sj.Metrics, struct {
			Name string `json:"name"`
		}{m.Name})
	}
	return sj
}

// DefaultGzipMinBytes is the partial-response size above which workers
// gzip the blob for clients that accept it. Small partials are cheaper to
// send raw than to compress.
const DefaultGzipMinBytes = 16 << 10

// Worker hosts partition stores behind an HTTP API:
//
//	POST /partition  {"name": ..., "schema": {...}}     create a partition
//	POST /load       {"partition": ..., "rows": [...]}  ingest (JSON, row-at-a-time)
//	POST /loadbin    binary columnar batch (see EncodeBatch)
//	POST /partial    {"partition": ..., "query": {...}} execute, returns a
//	                 binary engine partial (application/octet-stream)
//	GET  /health     liveness
type Worker struct {
	// GzipMinBytes overrides the partial-response compression threshold:
	// 0 means DefaultGzipMinBytes, negative disables compression.
	GzipMinBytes int

	mu     sync.Mutex
	stores map[string]*brick.Store
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{stores: make(map[string]*brick.Store)}
}

// AddPartition creates a partition store.
func (w *Worker) AddPartition(name string, schema brick.Schema) error {
	st, err := brick.NewStore(schema)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.stores[name]; ok {
		return fmt.Errorf("netexec: partition %q exists", name)
	}
	w.stores[name] = st
	return nil
}

// Store returns a partition's store.
func (w *Worker) Store(name string) (*brick.Store, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.stores[name]
	if !ok {
		return nil, fmt.Errorf("netexec: no partition %q", name)
	}
	return st, nil
}

// Partitions returns the worker's partition names, sorted.
func (w *Worker) Partitions() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.stores))
	for n := range w.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type rowJSON struct {
	Dims    []uint32  `json:"dims"`
	Metrics []float64 `json:"metrics"`
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, "ok")
	})
	mux.HandleFunc("/partition", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Name   string     `json:"name"`
			Schema SchemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := w.AddPartition(req.Name, req.Schema.ToSchema()); err != nil {
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		rw.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/load", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Partition string    `json:"partition"`
			Rows      []rowJSON `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(req.Partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		for _, row := range req.Rows {
			if err := st.Insert(row.Dims, row.Metrics); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
		}
		fmt.Fprintf(rw, `{"loaded":%d}`, len(req.Rows))
	})
	mux.HandleFunc("/loadbin", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		partition, dimCols, metricCols, rows, err := DecodeBatch(data)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		if rows > 0 {
			if err := st.InsertBatch(dimCols, metricCols); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
		}
		fmt.Fprintf(rw, `{"loaded":%d}`, rows)
	})
	mux.HandleFunc("/partial", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Partition string       `json:"partition"`
			Query     engine.Query `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(req.Partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		partial, err := engine.ExecuteParallel(st, &req.Query)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		blob, err := partial.MarshalBinary()
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		payload := blob
		gzMin := w.GzipMinBytes
		if gzMin == 0 {
			gzMin = DefaultGzipMinBytes
		}
		if gzMin > 0 && len(blob) >= gzMin && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			if _, err := zw.Write(blob); err == nil && zw.Close() == nil {
				payload = zbuf.Bytes()
				rw.Header().Set("Content-Encoding", "gzip")
			}
		}
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		if _, err := rw.Write(payload); err != nil {
			// The response is already committed; all we can do is log the
			// broken pipe rather than silently truncate the partial.
			log.Printf("netexec: partial response for %q aborted: %v", req.Partition, err)
		}
	})
	return mux
}

// Target is one partition placement: which worker URL serves it.
type Target struct {
	URL       string
	Partition string
}

// ErrWorkerFailed wraps per-worker HTTP failures.
var ErrWorkerFailed = errors.New("netexec: worker request failed")

// NewTransport returns an http.Transport tuned for coordinator fan-out:
// keep-alives with an idle pool sized so a scatter-gather over `fanout`
// partitions reuses connections instead of paying a dial + TCP handshake
// per partial on every query.
func NewTransport(fanout int) *http.Transport {
	if fanout < 4 {
		fanout = 4
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	// All partitions of a table may live on one worker host; let the whole
	// fan-out keep its connections warm.
	tr.MaxIdleConnsPerHost = fanout
	tr.MaxIdleConns = 4 * fanout
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// NewCoordinator returns a coordinator with a pooled transport sized for
// the expected fan-out.
func NewCoordinator(fanout int) *Coordinator {
	return &Coordinator{Client: &http.Client{Transport: NewTransport(fanout)}}
}

// Coordinator fans queries out to workers and merges their partials.
type Coordinator struct {
	// Client is the HTTP client used for worker calls; http.DefaultClient
	// when nil.
	Client *http.Client
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Query executes q over all targets in parallel and returns the merged,
// finalized result. Any worker failure fails the query (exact semantics,
// §II-C) with an error wrapping ErrWorkerFailed.
//
// The merge is streaming: each worker's wire partial folds into the
// accumulator the moment it arrives (engine.MergeWire, no intermediate
// Partial), overlapping coordinator-side merge work with the slower
// workers' network time instead of idling at a barrier. Accumulator merge
// is commutative — sums, counts, min/max and HLL register maxima are
// order-independent — so results are bit-identical regardless of arrival
// order. The first failure cancels the in-flight peer requests (fail
// fast): there is no point finishing a scatter-gather whose result is
// already lost.
func (c *Coordinator) Query(ctx context.Context, targets []Target, q *engine.Query) (*engine.Result, error) {
	if len(targets) == 0 {
		return nil, errors.New("netexec: no targets")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		idx  int
		blob []byte
		err  error
	}
	// Buffered to the fan-out so late finishers never block: Query may
	// return on the first error while peers are still draining.
	ch := make(chan outcome, len(targets))
	for i, t := range targets {
		go func(i int, t Target) {
			blob, err := c.fetchPartial(ctx, t, q)
			ch <- outcome{i, blob, err}
		}(i, t)
	}
	merged := engine.NewPartial(q)
	for n := 0; n < len(targets); n++ {
		o := <-ch
		t := targets[o.idx]
		if o.err != nil {
			return nil, fmt.Errorf("%w: %s %s: %v", ErrWorkerFailed, t.URL, t.Partition, o.err)
		}
		if err := engine.MergeWire(merged, o.blob); err != nil {
			return nil, fmt.Errorf("%w: %s %s: %v", ErrWorkerFailed, t.URL, t.Partition, err)
		}
	}
	return merged.Finalize(), nil
}

// fetchPartial returns the raw wire partial from one worker. The transport
// advertises gzip and transparently decompresses, so large partials cross
// the wire compressed without any handling here.
func (c *Coordinator) fetchPartial(ctx context.Context, t Target, q *engine.Query) ([]byte, error) {
	body, err := json.Marshal(struct {
		Partition string        `json:"partition"`
		Query     *engine.Query `json:"query"`
	}{t.Partition, q})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/partial", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// Client is a convenience HTTP client for worker admin operations.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

func (cl *Client) checkResp(path string, resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: %s: status %d: %s", ErrWorkerFailed, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

func (cl *Client) post(path string, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := cl.http().Post(cl.BaseURL+path, "application/json", bytes.NewReader(body))
	return cl.checkResp(path, resp, err)
}

// CreatePartition creates a partition on the worker.
func (cl *Client) CreatePartition(name string, schema brick.Schema) error {
	return cl.post("/partition", struct {
		Name   string     `json:"name"`
		Schema SchemaJSON `json:"schema"`
	}{name, FromSchema(schema)})
}

// Load ingests rows into a partition on the worker via the JSON endpoint.
// Bulk paths should prefer LoadBin.
func (cl *Client) Load(partition string, dims [][]uint32, metrics [][]float64) error {
	rows := make([]rowJSON, len(dims))
	for i := range dims {
		rows[i] = rowJSON{Dims: dims[i], Metrics: metrics[i]}
	}
	return cl.post("/load", struct {
		Partition string    `json:"partition"`
		Rows      []rowJSON `json:"rows"`
	}{partition, rows})
}

// LoadBin ingests rows into a partition through the binary columnar batch
// endpoint: one packed blob, one request, one store lock on the worker.
func (cl *Client) LoadBin(partition string, dims [][]uint32, metrics [][]float64) error {
	blob, err := EncodeBatch(partition, dims, metrics)
	if err != nil {
		return err
	}
	resp, err := cl.http().Post(cl.BaseURL+"/loadbin", "application/octet-stream", bytes.NewReader(blob))
	return cl.checkResp("/loadbin", resp, err)
}
