// Package netexec is the networked data plane: Cubrick's scatter-gather
// over real HTTP instead of in-process calls. A Worker serves partition
// stores (ingest and partial-query execution) over HTTP; a Coordinator
// fans a query out to the workers holding the table's partitions, merges
// the returned wire partials and finalizes — exactly the paper's execution
// flow ("Each node eventually returns a partial result, which are merged
// and materialized on a query coordinator node"), with partials crossing a
// real network boundary.
package netexec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
)

// SchemaJSON is the wire form of a brick schema.
type SchemaJSON struct {
	Dimensions []struct {
		Name    string `json:"name"`
		Max     uint32 `json:"max"`
		Buckets uint32 `json:"buckets"`
	} `json:"dimensions"`
	Metrics []struct {
		Name string `json:"name"`
	} `json:"metrics"`
}

// ToSchema converts the wire form.
func (sj SchemaJSON) ToSchema() brick.Schema {
	var s brick.Schema
	for _, d := range sj.Dimensions {
		s.Dimensions = append(s.Dimensions, brick.Dimension{Name: d.Name, Max: d.Max, Buckets: d.Buckets})
	}
	for _, m := range sj.Metrics {
		s.Metrics = append(s.Metrics, brick.Metric{Name: m.Name})
	}
	return s
}

// FromSchema converts to the wire form.
func FromSchema(s brick.Schema) SchemaJSON {
	var sj SchemaJSON
	for _, d := range s.Dimensions {
		sj.Dimensions = append(sj.Dimensions, struct {
			Name    string `json:"name"`
			Max     uint32 `json:"max"`
			Buckets uint32 `json:"buckets"`
		}{d.Name, d.Max, d.Buckets})
	}
	for _, m := range s.Metrics {
		sj.Metrics = append(sj.Metrics, struct {
			Name string `json:"name"`
		}{m.Name})
	}
	return sj
}

// Worker hosts partition stores behind an HTTP API:
//
//	POST /partition  {"name": ..., "schema": {...}}     create a partition
//	POST /load       {"partition": ..., "rows": [...]}  ingest
//	POST /partial    {"partition": ..., "query": {...}} execute, returns a
//	                 binary engine partial (application/octet-stream)
//	GET  /health     liveness
type Worker struct {
	mu     sync.Mutex
	stores map[string]*brick.Store
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{stores: make(map[string]*brick.Store)}
}

// AddPartition creates a partition store.
func (w *Worker) AddPartition(name string, schema brick.Schema) error {
	st, err := brick.NewStore(schema)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.stores[name]; ok {
		return fmt.Errorf("netexec: partition %q exists", name)
	}
	w.stores[name] = st
	return nil
}

// Store returns a partition's store.
func (w *Worker) Store(name string) (*brick.Store, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.stores[name]
	if !ok {
		return nil, fmt.Errorf("netexec: no partition %q", name)
	}
	return st, nil
}

// Partitions returns the worker's partition names, sorted.
func (w *Worker) Partitions() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.stores))
	for n := range w.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type rowJSON struct {
	Dims    []uint32  `json:"dims"`
	Metrics []float64 `json:"metrics"`
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, "ok")
	})
	mux.HandleFunc("/partition", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Name   string     `json:"name"`
			Schema SchemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := w.AddPartition(req.Name, req.Schema.ToSchema()); err != nil {
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		rw.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/load", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Partition string    `json:"partition"`
			Rows      []rowJSON `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(req.Partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		for _, row := range req.Rows {
			if err := st.Insert(row.Dims, row.Metrics); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
		}
		fmt.Fprintf(rw, `{"loaded":%d}`, len(req.Rows))
	})
	mux.HandleFunc("/partial", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Partition string       `json:"partition"`
			Query     engine.Query `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(req.Partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		partial, err := engine.ExecuteParallel(st, &req.Query)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		blob, err := partial.MarshalBinary()
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Write(blob)
	})
	return mux
}

// Target is one partition placement: which worker URL serves it.
type Target struct {
	URL       string
	Partition string
}

// ErrWorkerFailed wraps per-worker HTTP failures.
var ErrWorkerFailed = errors.New("netexec: worker request failed")

// Coordinator fans queries out to workers and merges their partials.
type Coordinator struct {
	// Client is the HTTP client used for worker calls; http.DefaultClient
	// when nil.
	Client *http.Client
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Query executes q over all targets in parallel and returns the merged,
// finalized result. Any worker failure fails the query (exact semantics,
// §II-C) with an error wrapping ErrWorkerFailed.
func (c *Coordinator) Query(ctx context.Context, targets []Target, q *engine.Query) (*engine.Result, error) {
	if len(targets) == 0 {
		return nil, errors.New("netexec: no targets")
	}
	type outcome struct {
		partial *engine.Partial
		err     error
	}
	results := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			partial, err := c.fetchPartial(ctx, t, q)
			results[i] = outcome{partial, err}
		}(i, t)
	}
	wg.Wait()

	merged := engine.NewPartial(q)
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("%w: %s %s: %v", ErrWorkerFailed, targets[i].URL, targets[i].Partition, res.err)
		}
		if err := merged.Merge(res.partial); err != nil {
			return nil, err
		}
	}
	return merged.Finalize(), nil
}

func (c *Coordinator) fetchPartial(ctx context.Context, t Target, q *engine.Query) (*engine.Partial, error) {
	body, err := json.Marshal(struct {
		Partition string        `json:"partition"`
		Query     *engine.Query `json:"query"`
	}{t.Partition, q})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/partial", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return engine.UnmarshalPartial(q, blob)
}

// Client is a convenience HTTP client for worker admin operations.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

func (cl *Client) post(path string, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := cl.http().Post(cl.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%w: %s: status %d: %s", ErrWorkerFailed, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// CreatePartition creates a partition on the worker.
func (cl *Client) CreatePartition(name string, schema brick.Schema) error {
	return cl.post("/partition", struct {
		Name   string     `json:"name"`
		Schema SchemaJSON `json:"schema"`
	}{name, FromSchema(schema)})
}

// Load ingests rows into a partition on the worker.
func (cl *Client) Load(partition string, dims [][]uint32, metrics [][]float64) error {
	rows := make([]rowJSON, len(dims))
	for i := range dims {
		rows[i] = rowJSON{Dims: dims[i], Metrics: metrics[i]}
	}
	return cl.post("/load", struct {
		Partition string    `json:"partition"`
		Rows      []rowJSON `json:"rows"`
	}{partition, rows})
}
