// Package netexec is the networked data plane: Cubrick's scatter-gather
// over real HTTP instead of in-process calls. A Worker serves partition
// stores (ingest and partial-query execution) over HTTP; a Coordinator
// fans a query out to the workers holding the table's partitions, merges
// the returned wire partials and finalizes — exactly the paper's execution
// flow ("Each node eventually returns a partial result, which are merged
// and materialized on a query coordinator node"), with partials crossing a
// real network boundary.
//
// The data plane is built for fan-out: partials stream into the
// coordinator's accumulator as they arrive (no barrier, first failure
// cancels the peers), wire blobs fold in via engine.MergeWire without an
// intermediate Partial, and bulk ingest ships packed columnar batches to
// POST /loadbin instead of per-row JSON.
package netexec

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cubrick/internal/admission"
	"cubrick/internal/brick"
	"cubrick/internal/dict"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
	"cubrick/internal/rescache"
	"cubrick/internal/rollup"
	"cubrick/internal/trace"
)

// SchemaJSON is the wire form of a brick schema.
type SchemaJSON struct {
	Dimensions []struct {
		Name    string `json:"name"`
		Max     uint32 `json:"max"`
		Buckets uint32 `json:"buckets"`
	} `json:"dimensions"`
	Metrics []struct {
		Name string `json:"name"`
	} `json:"metrics"`
}

// ToSchema converts the wire form.
func (sj SchemaJSON) ToSchema() brick.Schema {
	var s brick.Schema
	for _, d := range sj.Dimensions {
		s.Dimensions = append(s.Dimensions, brick.Dimension{Name: d.Name, Max: d.Max, Buckets: d.Buckets})
	}
	for _, m := range sj.Metrics {
		s.Metrics = append(s.Metrics, brick.Metric{Name: m.Name})
	}
	return s
}

// FromSchema converts to the wire form.
func FromSchema(s brick.Schema) SchemaJSON {
	var sj SchemaJSON
	for _, d := range s.Dimensions {
		sj.Dimensions = append(sj.Dimensions, struct {
			Name    string `json:"name"`
			Max     uint32 `json:"max"`
			Buckets uint32 `json:"buckets"`
		}{d.Name, d.Max, d.Buckets})
	}
	for _, m := range s.Metrics {
		sj.Metrics = append(sj.Metrics, struct {
			Name string `json:"name"`
		}{m.Name})
	}
	return sj
}

// DefaultGzipMinBytes is the partial-response size above which workers
// gzip the blob for clients that accept it. Small partials are cheaper to
// send raw than to compress.
const DefaultGzipMinBytes = 16 << 10

// Worker hosts partition stores behind an HTTP API:
//
//	POST /partition  {"name": ..., "schema": {...}}     create a partition
//	POST /load       {"partition": ..., "rows": [...]}  ingest (JSON, row-at-a-time)
//	POST /loadbin    binary columnar batch (see EncodeBatch)
//	POST /partial    {"partition": ..., "query": {...}} execute, returns a
//	                 binary engine partial (application/octet-stream)
//	GET  /health     liveness
//
// With Tracer set, /partial continues the coordinator's trace (trace
// context arrives in X-Cubrick-Trace / X-Cubrick-Span headers) and also
// serves the worker's own ring at GET /debug/trace[/{id}]. With Metrics
// set, request counters and latency histograms accumulate and are served
// in Prometheus text format at GET /metrics (plus a /stats counter alias
// mirroring the coordinator's).
type Worker struct {
	// GzipMinBytes overrides the partial-response compression threshold:
	// 0 means DefaultGzipMinBytes, negative disables compression.
	GzipMinBytes int
	// Tracer, when set, records worker-side spans (partial handling,
	// execute with scan accounting, marshal) into propagated traces.
	Tracer *trace.Tracer
	// Metrics, when set, receives request counters and latency histograms.
	Metrics *metrics.Registry
	// Admission, when set, gates /partial execution: queries queue for a
	// slot (queue time goes to the query.queue_ms histogram and the
	// request span) and shed with 429 when the queue is full. Nil admits
	// everything.
	Admission *admission.Controller
	// FoldScans routes /partial execution through per-store scan
	// schedulers so concurrent queries with equal fold keys share one
	// brick pass. A request can opt out per query with the
	// X-Cubrick-Fold: off header. Off in the zero value.
	FoldScans bool
	// BrickCacheBytes budgets the worker's per-brick partial cache (fold
	// key + brick epoch -> finished per-task accumulator); 0 disables it.
	// Set before the first request.
	BrickCacheBytes int64
	// DecodedCacheBytes budgets the storage layer's decoded-column cache
	// (hot compressed bricks keep their decoded columns resident); 0
	// disables it. Set before the first AddPartition.
	DecodedCacheBytes int64
	// ExportRateBytes throttles /export responses to this many bytes per
	// second (the -migrate-rate-bytes flag); 0 streams at full speed. A
	// paced export bounds the load a live migration puts on the source.
	ExportRateBytes int64
	// DictCapacity is the fallback id capacity for dictionaries created by
	// a pushed delta when the column names no schema dimension (the
	// -dict-capacity flag); 0 leaves only the schema-derived fallback.
	DictCapacity uint32
	// RollupTimeDim names the time dimension incremental rollup tables
	// bucket on (the -rollup-time-dim flag); empty disables rollups. Each
	// partition whose schema has the dimension gets a rollup table that
	// catches up on every ingest batch and answers eligible /partial
	// queries without a raw scan (see engine.ExecuteRollup). Set before
	// the first AddPartition.
	RollupTimeDim string
	// RollupBucket is the rollup bucket width in time-dimension units
	// (the -rollup-bucket flag); 0 means 1.
	RollupBucket uint32
	// RollupDims lists the dimensions rollup groups carry (the
	// -rollup-dims flag); empty means every non-time dimension of the
	// partition's schema. Dimensions a schema lacks are skipped.
	RollupDims []string
	// RollupDistinct lists dimensions maintained as HLL sketches for
	// COUNT(DISTINCT) serving (the -rollup-distinct flag).
	RollupDistinct []string

	mu     sync.Mutex
	stores map[string]*brick.Store

	// rollupMu guards rollups: per-partition incremental rollup tables.
	rollupMu sync.Mutex
	rollups  map[string]*rollup.Table

	// fenceMu guards fenced: partitions mid-cutover that reject ingest
	// with a retryable 503 while their migration flips ownership.
	fenceMu sync.Mutex
	fenced  map[string]bool

	schedMu sync.Mutex
	scheds  map[*brick.Store]*engine.Scheduler

	// dictMu guards dicts: per-partition global-dictionary sets, synced
	// between nodes as append-only deltas over /dict (see dictsync.go).
	dictMu sync.Mutex
	dicts  map[string]*dict.Set

	cacheOnce    sync.Once
	brickCache   *engine.BrickCache
	decodedCache *brick.DecodedCache
}

// caches lazily builds the worker's two cache levels from the configured
// byte budgets (both nil when the budgets are zero) and wires their
// counters into the metrics registry.
func (w *Worker) caches() (*engine.BrickCache, *brick.DecodedCache) {
	w.cacheOnce.Do(func() {
		w.brickCache = engine.NewBrickCache(w.BrickCacheBytes)
		w.brickCache.SetMetrics(w.Metrics)
		w.decodedCache = brick.NewDecodedCache(w.DecodedCacheBytes)
		w.decodedCache.SetMetrics(w.Metrics)
	})
	return w.brickCache, w.decodedCache
}

func (w *Worker) countAdd(name string, delta int64) {
	if w.Metrics != nil {
		w.Metrics.Counter(name).Add(delta)
	}
}

func (w *Worker) observe(name string, d time.Duration) {
	if w.Metrics != nil {
		w.Metrics.Histogram(name).Observe(d.Seconds())
	}
}

// NewWorker returns an empty worker.
func NewWorker() *Worker {
	return &Worker{
		stores: make(map[string]*brick.Store),
		scheds: make(map[*brick.Store]*engine.Scheduler),
	}
}

// scheduler returns the store's scan scheduler, creating it on first use.
// partition becomes the scheduler's brick-cache scope so stores sharing
// the worker-wide cache never collide on keys.
func (w *Worker) scheduler(partition string, st *brick.Store) *engine.Scheduler {
	bc, _ := w.caches()
	w.schedMu.Lock()
	defer w.schedMu.Unlock()
	if w.scheds == nil {
		w.scheds = make(map[*brick.Store]*engine.Scheduler)
	}
	s := w.scheds[st]
	if s == nil {
		s = engine.NewScheduler(st, engine.SchedulerConfig{
			Metrics:    w.Metrics,
			BrickCache: bc,
			CacheScope: partition,
		})
		w.scheds[st] = s
	}
	return s
}

// AddPartition creates a partition store.
func (w *Worker) AddPartition(name string, schema brick.Schema) error {
	st, err := brick.NewStore(schema)
	if err != nil {
		return err
	}
	if w.Metrics != nil {
		st.SetMetricsRegistry(w.Metrics)
	}
	// Every partition store shares the worker-wide decoded-column cache
	// (keys carry a process-unique brick uid, so stores cannot collide).
	if _, dc := w.caches(); dc != nil {
		st.SetDecodedCache(dc)
	}
	w.mu.Lock()
	if _, ok := w.stores[name]; ok {
		w.mu.Unlock()
		return fmt.Errorf("netexec: partition %q exists", name)
	}
	w.stores[name] = st
	w.mu.Unlock()
	w.attachRollup(name, st)
	return nil
}

// attachRollup creates the partition's rollup table (when the worker is
// configured for rollups and the schema has the time dimension) and hooks
// the store's ingest observer so the table catches up incrementally on
// every committed batch. Queries never depend on the observer — Serve
// catches up again under its own lock — it just keeps query-time catch-up
// work near zero.
func (w *Worker) attachRollup(name string, st *brick.Store) {
	if w.RollupTimeDim == "" {
		return
	}
	schema := st.Schema()
	if schema.DimIndex(w.RollupTimeDim) < 0 {
		return
	}
	cfg := rollup.Config{TimeDim: w.RollupTimeDim, Bucket: w.RollupBucket}
	if cfg.Bucket == 0 {
		cfg.Bucket = 1
	}
	if len(w.RollupDims) > 0 {
		for _, d := range w.RollupDims {
			if d != cfg.TimeDim && schema.DimIndex(d) >= 0 {
				cfg.Dims = append(cfg.Dims, d)
			}
		}
	} else {
		for _, d := range schema.Dimensions {
			if d.Name != cfg.TimeDim {
				cfg.Dims = append(cfg.Dims, d.Name)
			}
		}
	}
	for _, d := range w.RollupDistinct {
		if schema.DimIndex(d) >= 0 {
			cfg.DistinctDims = append(cfg.DistinctDims, d)
		}
	}
	tbl, err := rollup.New(schema, cfg)
	if err != nil {
		log.Printf("netexec: partition %q: rollup disabled: %v", name, err)
		return
	}
	w.rollupMu.Lock()
	if w.rollups == nil {
		w.rollups = make(map[string]*rollup.Table)
	}
	w.rollups[name] = tbl
	w.rollupMu.Unlock()
	st.SetIngestObserver(func() {
		if _, err := tbl.CatchUp(st); err != nil {
			w.countAdd("worker.rollup.catchup_errors", 1)
		}
	})
}

// RollupTable returns the partition's rollup table, nil when rollups are
// off or the partition's schema lacks the configured time dimension.
func (w *Worker) RollupTable(partition string) *rollup.Table {
	w.rollupMu.Lock()
	defer w.rollupMu.Unlock()
	return w.rollups[partition]
}

// CompactAll runs one compaction pass over every partition store and
// returns the summed tier transitions. The background compactor in
// cmd/cubrick-worker calls this on a ticker.
func (w *Worker) CompactAll(cfg brick.CompactionConfig) (brick.CompactionStats, error) {
	var total brick.CompactionStats
	for _, st := range w.allStores() {
		s, err := st.CompactOnce(cfg)
		total.Add(s)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DecayHotness cools every brick on the worker — the compactor ticker
// calls it before each pass so untouched bricks drift down the tier
// ladder (queries and ingest heat them back up).
func (w *Worker) DecayHotness(factor float64) {
	for _, st := range w.allStores() {
		st.DecayHotness(factor)
	}
}

func (w *Worker) allStores() []*brick.Store {
	w.mu.Lock()
	defer w.mu.Unlock()
	stores := make([]*brick.Store, 0, len(w.stores))
	for _, st := range w.stores {
		stores = append(stores, st)
	}
	return stores
}

// Store returns a partition's store.
func (w *Worker) Store(name string) (*brick.Store, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.stores[name]
	if !ok {
		return nil, fmt.Errorf("netexec: no partition %q", name)
	}
	return st, nil
}

// Partitions returns the worker's partition names, sorted.
func (w *Worker) Partitions() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.stores))
	for n := range w.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type rowJSON struct {
	Dims    []uint32  `json:"dims"`
	Metrics []float64 `json:"metrics"`
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, "ok")
	})
	mux.HandleFunc("/partition", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Name   string     `json:"name"`
			Schema SchemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if err := w.AddPartition(req.Name, req.Schema.ToSchema()); err != nil {
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		rw.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("/load", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req struct {
			Partition string    `json:"partition"`
			Rows      []rowJSON `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(req.Partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		if w.IsFenced(req.Partition) {
			w.countAdd("worker.load.fenced_rejects", 1)
			http.Error(rw, fencedMsg, http.StatusServiceUnavailable)
			return
		}
		// Route through the batch path so ingest is all-or-nothing like
		// /loadbin: the whole batch is validated (arity, domains, with the
		// offending row index in the error) before any row commits. A
		// per-row Insert loop would leave a prefix behind on failure.
		dims := make([][]uint32, len(req.Rows))
		mets := make([][]float64, len(req.Rows))
		for i, row := range req.Rows {
			dims[i], mets[i] = row.Dims, row.Metrics
		}
		if err := st.InsertBatchRows(dims, mets); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rw.Header().Set(HeaderEpoch, strconv.FormatUint(st.Epoch(), 10))
		w.countAdd("worker.load.requests", 1)
		w.countAdd("worker.load.rows", int64(len(req.Rows)))
		fmt.Fprintf(rw, `{"loaded":%d}`, len(req.Rows))
	})
	mux.HandleFunc("/loadbin", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		partition, dimCols, metricCols, rows, err := DecodeBatch(data)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := w.Store(partition)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusNotFound)
			return
		}
		if w.IsFenced(partition) {
			w.countAdd("worker.load.fenced_rejects", 1)
			http.Error(rw, fencedMsg, http.StatusServiceUnavailable)
			return
		}
		if rows > 0 {
			if err := st.InsertBatch(dimCols, metricCols); err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
		}
		rw.Header().Set(HeaderEpoch, strconv.FormatUint(st.Epoch(), 10))
		w.countAdd("worker.load.requests", 1)
		w.countAdd("worker.load.rows", int64(rows))
		fmt.Fprintf(rw, `{"loaded":%d}`, rows)
	})
	mux.HandleFunc("/partial", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		ctx := r.Context()
		var wspan *trace.Span
		if w.Tracer != nil {
			// Continue the coordinator's trace when context was propagated;
			// otherwise the worker records a local trace of its own.
			tid, sid, _ := trace.Extract(r.Header)
			ctx, wspan = w.Tracer.StartRemoteSpan(ctx, "worker.partial", tid, sid)
		}
		status, err := w.servePartial(ctx, rw, r)
		if err != nil {
			http.Error(rw, err.Error(), status)
		}
		wspan.EndErr(err)
		w.countAdd("worker.partial.requests", 1)
		if err != nil {
			w.countAdd("worker.partial.errors", 1)
		}
		w.observe("worker.partial.latency", time.Since(start))
	})
	if w.Metrics != nil {
		mux.Handle("/metrics", metrics.Handler(w.Metrics))
		// /stats mirrors the coordinator's legacy counter dump.
		mux.HandleFunc("/stats", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]interface{}{
				"counters": w.Metrics.CounterValues(),
			})
		})
	}
	if w.Tracer != nil {
		th := w.Tracer.Handler()
		mux.Handle("/debug/trace", th)
		mux.Handle("/debug/trace/", th)
	}
	w.registerMigration(mux)
	w.registerDict(mux)
	return mux
}

// Admission metadata travels worker-ward in HTTP headers: the coordinator
// stamps its context's tenant and priority onto /partial requests so
// worker-side quotas account the right tenant, and can switch folding off
// per request.
const (
	HeaderTenant   = "X-Cubrick-Tenant"
	HeaderPriority = "X-Cubrick-Priority"
	// HeaderFold set to "off" bypasses the shared-scan scheduler for the
	// request (solo ExecuteParallel, the pre-scheduler path).
	HeaderFold = "X-Cubrick-Fold"
	// HeaderCache set to "off" bypasses every cache level for one request:
	// the coordinator skips its result cache and stamps the header
	// worker-ward, where /partial neither consults nor fills the brick and
	// decoded-column caches. The answer is then guaranteed fully
	// recomputed — the debugging escape hatch.
	HeaderCache = "X-Cubrick-Cache"
	// HeaderEpoch carries ingest-epoch state coordinator-ward in HTTP
	// responses: /partial reports the partition's epoch read before
	// execution (conservative — a mid-scan ingest yields a higher epoch
	// that invalidates), /load and /loadbin report the epoch after the
	// batch committed. The coordinator's result cache validates its
	// entries against the latest epoch seen per partition.
	HeaderEpoch = "X-Cubrick-Epoch"
	// HeaderTopK on a /partial request negotiates top-k pushdown: its
	// value k′ asks the worker to prune the partial to its local top k′
	// groups under the query's ORDER BY. Workers that predate the header
	// ignore it and ship the full partial — the coordinator's certifier
	// treats a response without the topk response headers as a complete
	// (unbounded) contribution, so mixed fleets stay correct.
	HeaderTopK = "X-Cubrick-TopK"
	// HeaderTopKThreshold on a pruned /partial response carries the
	// worker's local k′-th order value — the bound on every group it did
	// not ship — as an exact hex float (strconv 'x' format).
	HeaderTopKThreshold = "X-Cubrick-TopK-Threshold"
	// HeaderTopKComplete on a /partial response acknowledges the topk
	// negotiation when the worker had ≤ k′ groups and pruned nothing: the
	// partial is its complete group set.
	HeaderTopKComplete = "X-Cubrick-TopK-Complete"
	// HeaderTopKDropped reports how many groups pruning dropped, feeding
	// the coordinator's wire-savings estimate.
	HeaderTopKDropped = "X-Cubrick-TopK-Dropped"
)

// attrMS annotates a span with a duration in fractional milliseconds.
func attrMS(s *trace.Span, key string, d time.Duration) {
	if s != nil {
		s.SetAttr(key, strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64))
	}
}

// servePartial executes one partial request. On failure it returns the
// HTTP status to send with the error; on success it writes the response
// itself and returns a nil error.
func (w *Worker) servePartial(ctx context.Context, rw http.ResponseWriter, r *http.Request) (int, error) {
	var req struct {
		Partition string       `json:"partition"`
		Query     engine.Query `json:"query"`
		// TopKKeys marks a top-k second-phase fetch: execute fully, then
		// subset the partial to exactly these groups (hex-encoded raw
		// group keys) so the coordinator can make its uncertain
		// candidates exact without re-shipping the whole group set.
		TopKKeys []string `json:"topk_keys,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, err
	}
	trace.SpanFromContext(ctx).SetAttr("partition", req.Partition)
	st, err := w.Store(req.Partition)
	if err != nil {
		return http.StatusNotFound, err
	}
	// Epoch reported to the coordinator: read before execution so a batch
	// landing mid-scan (which this scan may have missed) yields a higher
	// epoch than the one the response carries — the coordinator's cached
	// entry then invalidates the moment the newer epoch is learned.
	epoch := st.Epoch()
	if w.Admission != nil {
		priority, _ := strconv.Atoi(r.Header.Get(HeaderPriority))
		tkt, err := w.Admission.Admit(ctx, r.Header.Get(HeaderTenant), priority)
		if err != nil {
			if errors.Is(err, admission.ErrQueueFull) {
				// 429 is classified retryable by the coordinator's
				// resilience policy, so shed queries retry or fail over.
				return http.StatusTooManyRequests, err
			}
			return http.StatusServiceUnavailable, err
		}
		defer tkt.Release()
		attrMS(trace.SpanFromContext(ctx), "queue_ms", tkt.Queued)
	}
	// The execute span carries the PR 1 scan accounting (bricks visited
	// and pruned, rows scanned, decompressions) plus the engine's own
	// plan/scan/combine stage split, so a slow partial is attributable
	// from the trace alone.
	_, espan := w.Tracer.StartSpan(ctx, "worker.execute")
	var partial *engine.Partial
	var tm engine.Timings
	noCache := r.Header.Get(HeaderCache) == "off"
	bc, _ := w.caches()
	// Rollup-served path: eligible queries answer from the partition's
	// incremental rollup table (pre-aggregated whole buckets + a delta
	// scan above the ingest watermarks + ragged-edge scans) instead of a
	// full raw scan. Cache-bypassed requests skip it — X-Cubrick-Cache:
	// off promises a fully recomputed answer.
	if tbl := w.RollupTable(req.Partition); tbl != nil && !noCache {
		rstart := time.Now()
		rp, rinfo, ok, rerr := engine.ExecuteRollup(st, tbl, &req.Query)
		switch {
		case rerr != nil:
			// Rollup failures are availability bugs only if they fail the
			// query; fall through to the raw path instead.
			w.countAdd("worker.rollup.errors", 1)
		case ok:
			partial = rp
			tm.Scan = time.Since(rstart)
			w.countAdd("worker.rollup.hits", 1)
			w.countAdd("worker.rollup.delta_rows", rinfo.DeltaRows)
			espan.SetAttr("rollup.hit", "true")
			espan.SetAttrInt("rollup.groups", int64(rinfo.Groups))
			espan.SetAttrInt("rollup.delta_rows", rinfo.DeltaRows)
			espan.SetAttrInt("rollup.edge_scans", int64(rinfo.EdgeScans))
			espan.SetAttrInt("rollup.epoch", int64(rinfo.Epoch))
		default:
			w.countAdd("worker.rollup.misses", 1)
		}
	}
	switch {
	case partial != nil: // rollup-served above
	case noCache:
		// Per-request bypass: no brick-partial cache, and the decoded-column
		// cache neither consulted nor filled. Bypassed requests also skip
		// scan folding — sharing a pass with a cached peer would reuse its
		// cached per-brick partials.
		espan.SetAttr("cache.bypass", "true")
		partial, tm, err = engine.ExecuteParallelNoCacheTimed(st, &req.Query)
	case w.FoldScans && r.Header.Get(HeaderFold) != "off":
		var info engine.ExecInfo
		partial, info, err = w.scheduler(req.Partition, st).ExecuteInfo(ctx, &req.Query)
		if err == nil {
			tm = info.Timings
			espan.SetAttr("folded", strconv.FormatBool(info.Folded))
			espan.SetAttrInt("catchup_bricks", int64(info.CatchupBricks))
			if bc != nil {
				espan.SetAttrInt("cache.brick.hits", int64(info.CacheHits))
				espan.SetAttrInt("cache.brick.misses", int64(info.CacheMisses))
			}
		}
	case bc != nil:
		var hits, misses int
		partial, tm, hits, misses, err = engine.ExecuteParallelCachedTimed(st, &req.Query, bc, req.Partition)
		if err == nil {
			espan.SetAttrInt("cache.brick.hits", int64(hits))
			espan.SetAttrInt("cache.brick.misses", int64(misses))
		}
	default:
		partial, tm, err = engine.ExecuteParallelTimed(st, &req.Query)
	}
	if err != nil {
		espan.EndErr(err)
		return http.StatusBadRequest, err
	}
	attrMS(espan, "plan_ms", tm.Plan)
	attrMS(espan, "scan_ms", tm.Scan)
	attrMS(espan, "combine_ms", tm.Combine)
	espan.SetAttrInt("rows_scanned", partial.RowsScanned)
	espan.SetAttrInt("bricks_visited", partial.BricksVisited)
	espan.SetAttrInt("bricks_pruned", partial.BricksPruned)
	espan.SetAttrInt("decompressions", partial.Decompressions)
	espan.End()
	w.observe("worker.execute.latency", tm.Total())
	w.countAdd("worker.rows.scanned", partial.RowsScanned)

	// Top-k pushdown. Phase 2 (TopKKeys) subsets the full partial to the
	// coordinator's uncertain keys; phase 1 (X-Cubrick-TopK: k′) prunes to
	// the local top k′ and reports the threshold bounding unsent groups.
	var topkHdr func(http.Header)
	if len(req.TopKKeys) > 0 {
		keys := make([]string, len(req.TopKKeys))
		for i, h := range req.TopKKeys {
			kb, err := hex.DecodeString(h)
			if err != nil {
				return http.StatusBadRequest, fmt.Errorf("netexec: bad topk key %q: %w", h, err)
			}
			keys[i] = string(kb)
		}
		partial.Subset(keys)
		w.countAdd("worker.topk.phase2", 1)
	} else if h := r.Header.Get(HeaderTopK); h != "" {
		kPrime, err := strconv.Atoi(h)
		if err != nil || kPrime <= 0 {
			return http.StatusBadRequest, fmt.Errorf("netexec: bad %s header %q", HeaderTopK, h)
		}
		if _, ok := engine.TopKSpecFor(&req.Query); ok {
			before := partial.GroupCount()
			threshold, complete := engine.PruneTopK(partial, kPrime)
			if complete {
				// Nothing pruned: the explicit ack distinguishes "complete
				// group set" from a worker that predates the protocol.
				topkHdr = func(hdr http.Header) { hdr.Set(HeaderTopKComplete, "1") }
			} else {
				dropped := before - partial.GroupCount()
				w.countAdd("worker.topk.pruned", 1)
				w.countAdd("worker.topk.groups_dropped", int64(dropped))
				topkHdr = func(hdr http.Header) {
					// Hex float formatting round-trips the threshold exactly.
					hdr.Set(HeaderTopKThreshold, strconv.FormatFloat(threshold, 'x', -1, 64))
					hdr.Set(HeaderTopKDropped, strconv.Itoa(dropped))
				}
			}
		}
	}

	_, mspan := w.Tracer.StartSpan(ctx, "worker.marshal")
	blob, err := partial.MarshalBinary()
	if err != nil {
		mspan.EndErr(err)
		return http.StatusInternalServerError, err
	}
	payload := blob
	gzMin := w.GzipMinBytes
	if gzMin == 0 {
		gzMin = DefaultGzipMinBytes
	}
	gzipped := false
	if gzMin > 0 && len(blob) >= gzMin && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(blob); err == nil && zw.Close() == nil {
			payload = zbuf.Bytes()
			rw.Header().Set("Content-Encoding", "gzip")
			gzipped = true
		}
	}
	mspan.SetAttrInt("bytes", int64(len(payload)))
	mspan.SetAttr("gzip", strconv.FormatBool(gzipped))
	mspan.End()
	rw.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	if topkHdr != nil {
		topkHdr(rw.Header())
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	if _, err := rw.Write(payload); err != nil {
		// The response is already committed; all we can do is log the
		// broken pipe rather than silently truncate the partial.
		log.Printf("netexec: partial response for %q aborted: %v", req.Partition, err)
	}
	return 0, nil
}

// Target is one partition placement: which worker URL serves it, plus any
// replica URLs holding the same partition. Replicas are what retries,
// hedges and breaker-driven failover route to when the primary is slow or
// down — the paper's reliability wall falls exactly as fast as a query's
// ability to dodge a single bad host.
type Target struct {
	URL       string
	Partition string
	// Replicas are alternate worker URLs serving the same partition's
	// data; attempts rotate primary-then-replicas.
	Replicas []string
	// Dual, when non-empty, is the partition's previous placement during
	// a migration's dual-read window: the coordinator queries both
	// placements and keeps the answer with the higher ingest epoch, so a
	// query racing the ownership flip never sees a hole (the old owner
	// still holds the data, the new owner may be one propagation hop
	// ahead).
	Dual []string
}

// urls returns the primary followed by the replicas.
func (t Target) urls() []string {
	if len(t.Replicas) == 0 {
		return []string{t.URL}
	}
	out := make([]string, 0, 1+len(t.Replicas))
	out = append(out, t.URL)
	return append(out, t.Replicas...)
}

// ErrWorkerFailed wraps per-worker HTTP failures.
var ErrWorkerFailed = errors.New("netexec: worker request failed")

// NewTransport returns an http.Transport tuned for coordinator fan-out:
// keep-alives with an idle pool sized so a scatter-gather over `fanout`
// partitions reuses connections instead of paying a dial + TCP handshake
// per partial on every query.
func NewTransport(fanout int) *http.Transport {
	if fanout < 4 {
		fanout = 4
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	// All partitions of a table may live on one worker host; let the whole
	// fan-out keep its connections warm.
	tr.MaxIdleConnsPerHost = fanout
	tr.MaxIdleConns = 4 * fanout
	tr.IdleConnTimeout = 90 * time.Second
	return tr
}

// NewCoordinator returns a coordinator with a pooled transport sized for
// the expected fan-out.
func NewCoordinator(fanout int) *Coordinator {
	return &Coordinator{Client: &http.Client{Transport: NewTransport(fanout)}}
}

// DefaultMaxPartialBytes bounds how much of a worker's partial response
// the coordinator will read. A corrupt or malicious worker must not be
// able to OOM the coordinator through an unbounded io.ReadAll.
const DefaultMaxPartialBytes = 256 << 20

// Coordinator fans queries out to workers and merges their partials. The
// zero value reproduces the exact fail-fast baseline; Policy, Breakers and
// Metrics opt into the resilience layer. A Coordinator is intended to be
// long-lived and shared across queries: the breaker group and the hedge
// latency tracker accumulate cross-query state.
type Coordinator struct {
	// Client is the HTTP client used for worker calls; http.DefaultClient
	// when nil.
	Client *http.Client
	// Policy configures retries, hedging, per-try deadlines and graceful
	// degradation. The zero value means one attempt, no hedge, exact
	// semantics.
	Policy QueryPolicy
	// Breakers, when set, short-circuits requests to hosts that keep
	// failing so a dead worker is skipped to its replica immediately
	// instead of burning a timeout per query.
	Breakers *BreakerGroup
	// Metrics, when set, receives retry/hedge/degradation counters plus
	// query/merge latency histograms.
	Metrics *metrics.Registry
	// Tracer, when set, records per-query spans: the fan-out, each
	// partition's attempts (retries, hedges, breaker-driven failover) and
	// the finalize, with trace context propagated to workers in HTTP
	// headers. Nil disables tracing at the cost of one nil check.
	Tracer *trace.Tracer
	// MaxPartialBytes bounds each worker response read; 0 means
	// DefaultMaxPartialBytes, negative disables the bound.
	MaxPartialBytes int64
	// Admission, when set, gates whole queries before fan-out: per-tenant
	// quotas and a bounded priority queue, with queue time recorded on
	// the fan-out span and the query.queue_ms histogram, and
	// ErrQueueFull shedding when the queue is at capacity. Tenant and
	// priority come from admission.WithMeta on the request context. Nil
	// admits everything.
	Admission *admission.Controller
	// NoFold stamps X-Cubrick-Fold: off on worker requests, bypassing
	// worker-side shared-scan folding for queries from this coordinator.
	NoFold bool
	// TopKOverfetch enables distributed top-k pushdown for eligible
	// ORDER BY <aggregate> LIMIT k queries (the -topk-overfetch flag):
	// workers ship only their local top overfetch×k groups plus a
	// threshold bounding the rest, and the coordinator certifies the
	// global top k from the bounds, issuing at most one targeted
	// second-phase fetch for uncertain keys before falling back to full
	// partials. 0 disables pushdown. Only exact-semantics queries
	// (MinCoverage 0 or 1) with no dual-read targets push down.
	TopKOverfetch int
	// ResultCache, when set, remembers finished full-coverage Results keyed
	// on the complete query identity (fold key + residue + partition set)
	// and validated against the per-partition ingest epochs workers report
	// in X-Cubrick-Epoch response headers. A hit answers with zero fan-out;
	// any partition whose epoch advanced invalidates exactly. Requests can
	// opt out with WithCacheBypass (the X-Cubrick-Cache: off path).
	ResultCache *rescache.Cache

	// epochMu guards epochs: the latest ingest epoch learned per partition
	// (from /partial responses and, via ObserveEpoch, from ingest
	// responses). Values only grow.
	epochMu sync.Mutex
	epochs  map[string]uint64

	// latMu guards lat, the observed partial-fetch latency distribution
	// behind quantile-based hedge delays.
	latMu sync.Mutex
	lat   *metrics.Histogram
}

// ObserveEpoch records a partition's ingest epoch (from a worker response
// header) into the coordinator's freshness view. Epochs are monotonic;
// stale observations — a lagging replica, a reordered response — are
// ignored rather than rolling the view back.
func (c *Coordinator) ObserveEpoch(partition string, epoch uint64) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if c.epochs == nil {
		c.epochs = make(map[string]uint64)
	}
	if epoch > c.epochs[partition] {
		c.epochs[partition] = epoch
	}
}

// KnownEpoch returns the latest ingest epoch the coordinator has learned
// for a partition, with ok=false before any response has reported one. It
// is the validation source for ResultCache lookups.
func (c *Coordinator) KnownEpoch(partition string) (uint64, bool) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	e, ok := c.epochs[partition]
	return e, ok
}

// cacheBypassCtxKey marks a request context as cache-bypassed.
type cacheBypassCtxKey struct{}

// WithCacheBypass marks the context so the query skips the coordinator's
// result cache and carries X-Cubrick-Cache: off to workers, which then
// bypass their brick and decoded-column caches too — a fully recomputed
// answer.
func WithCacheBypass(ctx context.Context) context.Context {
	return context.WithValue(ctx, cacheBypassCtxKey{}, true)
}

// CacheBypassed reports whether the context carries the bypass mark.
func CacheBypassed(ctx context.Context) bool {
	v, _ := ctx.Value(cacheBypassCtxKey{}).(bool)
	return v
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Coordinator) count(name string) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Inc()
	}
}

func (c *Coordinator) countAdd(name string, delta int64) {
	if c.Metrics != nil {
		c.Metrics.Counter(name).Add(delta)
	}
}

func (c *Coordinator) maxPartialBytes() int64 {
	switch {
	case c.MaxPartialBytes < 0:
		return int64(1) << 62 // effectively unbounded
	case c.MaxPartialBytes == 0:
		return DefaultMaxPartialBytes
	default:
		return c.MaxPartialBytes
	}
}

// observeLatency feeds a successful fetch latency into the hedge tracker.
func (c *Coordinator) observeLatency(d time.Duration) {
	c.latMu.Lock()
	if c.lat == nil {
		c.lat = metrics.NewLatencyHistogram()
	}
	h := c.lat
	c.latMu.Unlock()
	h.Observe(d.Seconds())
}

// hedgeDelay returns how long an attempt may stay outstanding before a
// hedge fires: the policy quantile of observed fetch latencies, clamped to
// [HedgeMinDelay, HedgeMaxDelay], or HedgeMinDelay until enough samples
// exist. 0 means hedging is disabled.
func (c *Coordinator) hedgeDelay() time.Duration {
	p := c.Policy
	if p.HedgeQuantile <= 0 {
		return 0
	}
	minD := p.HedgeMinDelay
	if minD <= 0 {
		minD = DefaultHedgeMinDelay
	}
	maxD := p.HedgeMaxDelay
	if maxD <= 0 {
		maxD = DefaultHedgeMaxDelay
	}
	c.latMu.Lock()
	h := c.lat
	c.latMu.Unlock()
	if h == nil || h.Count() < hedgeWarmupSamples {
		return minD
	}
	d := time.Duration(h.Quantile(p.HedgeQuantile) * float64(time.Second))
	if d < minD {
		d = minD
	}
	if d > maxD {
		d = maxD
	}
	return d
}

// Query executes q over all targets in parallel and returns the merged,
// finalized result.
//
// The merge is streaming: each worker's wire partial folds into the
// accumulator the moment it arrives (engine.MergeWire, no intermediate
// Partial), overlapping coordinator-side merge work with the slower
// workers' network time instead of idling at a barrier. Accumulator merge
// is commutative — sums, counts, min/max and HLL register maxima are
// order-independent — so results are bit-identical regardless of arrival
// order.
//
// Failure semantics follow c.Policy. Under exact semantics (MinCoverage 0
// or 1, the default and the paper's §II-C posture) any partition whose
// fetch fails — after the policy's retries, hedges and breaker-driven
// failover — fails the query with an error wrapping ErrWorkerFailed, and
// the first failure cancels the in-flight peers (fail fast). Under a
// degradation policy (0 < MinCoverage < 1) unreachable partitions are
// dropped instead: if the merged fraction stays >= MinCoverage the result
// is returned annotated with Coverage and MissingPartitions, otherwise the
// query fails. Merge errors (corrupt partials) are always terminal.
func (c *Coordinator) Query(ctx context.Context, targets []Target, q *engine.Query) (*engine.Result, error) {
	if len(targets) == 0 {
		return nil, errors.New("netexec: no targets")
	}
	var qstart time.Time
	if c.Metrics != nil {
		qstart = time.Now()
	}
	var queued time.Duration
	if c.Admission != nil {
		meta := admission.MetaFrom(ctx)
		tkt, err := c.Admission.Admit(ctx, meta.Tenant, meta.Priority)
		if err != nil {
			if errors.Is(err, admission.ErrQueueFull) {
				c.count("netexec.query.shed")
			}
			return nil, err
		}
		defer tkt.Release()
		queued = tkt.Queued
	}
	ctx, fanSpan := c.Tracer.StartSpan(ctx, "coordinator.fanout")
	fanSpan.SetAttrInt("targets", int64(len(targets)))
	if c.Admission != nil {
		attrMS(fanSpan, "queue_ms", queued)
	}
	bypass := CacheBypassed(ctx)
	var key rescache.Key
	if c.ResultCache != nil && !bypass {
		key = rescache.Key{
			Table:   targetsKey(targets),
			FoldKey: engine.FoldKey(q),
			Residue: engine.ResidueKey(q),
		}
		if res, ok := c.ResultCache.Get(key, c.KnownEpoch); ok {
			// Zero fan-out: the finished result replays straight from the
			// cache, every contributing partition provably at the epoch the
			// entry was computed at.
			fanSpan.SetAttr("cache.hit", "true")
			fanSpan.SetAttr("cache.level", "result")
			fanSpan.End()
			c.count("netexec.query.cached")
			if c.Metrics != nil {
				c.Metrics.Histogram("netexec.query.latency").Observe(time.Since(qstart).Seconds())
			}
			return res, nil
		}
		fanSpan.SetAttr("cache.hit", "false")
	}
	var res *engine.Result
	var epochs map[string]uint64
	var err error
	handled := false
	if c.topkEligible(targets, q) {
		res, epochs, handled, err = c.queryTopK(ctx, targets, q)
	}
	if !handled {
		res, epochs, err = c.queryFanout(ctx, targets, q)
	}
	if err == nil && c.ResultCache != nil && !bypass && epochs != nil {
		// Only full-epoch-vector, full-coverage results are cacheable (Put
		// re-checks Coverage); epochs is nil whenever any partial arrived
		// without an epoch header, a partition was dropped, or a top-k
		// second phase mixed per-partition epochs.
		c.ResultCache.Put(key, res, epochs)
	}
	fanSpan.EndErr(err)
	if c.Metrics != nil {
		c.Metrics.Histogram("netexec.query.latency").Observe(time.Since(qstart).Seconds())
	}
	return res, err
}

// targetsKey canonically names the partition set a query fanned out over,
// scoping result-cache keys: the same CQL against a different table (or a
// repartitioned one) must never share an entry.
func targetsKey(targets []Target) string {
	parts := make([]string, len(targets))
	for i, t := range targets {
		parts[i] = t.Partition
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1f")
}

// queryFanout is the body of Query, running under the fan-out span. The
// second return value is the ingest-epoch vector the result was computed
// at — one entry per partition, non-nil only when every partial carried an
// epoch header and no partition was dropped — which is what makes the
// result eligible for the coordinator's cache.
func (c *Coordinator) queryFanout(ctx context.Context, targets []Target, q *engine.Query) (*engine.Result, map[string]uint64, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		idx      int
		blob     []byte
		epoch    uint64
		hasEpoch bool
		err      error
	}
	// Buffered to the fan-out so late finishers never block: Query may
	// return on the first error while peers are still draining.
	ch := make(chan outcome, len(targets))
	for i, t := range targets {
		go func(i int, t Target) {
			// One span per partition covers the whole resilient fetch:
			// its children are the individual attempts (see fetchAttempt),
			// so a retry or hedge shows up as extra fetch spans under it.
			pctx, pspan := c.Tracer.StartSpan(ctx, "partition")
			pspan.SetAttr("partition", t.Partition)
			var blob []byte
			var meta partialMeta
			var err error
			if len(t.Dual) > 0 {
				blob, meta, err = c.fetchDual(pctx, t, q)
			} else {
				blob, meta, err = c.fetchResilient(pctx, t, q, partialOpts{})
			}
			pspan.EndErr(err)
			ch <- outcome{i, blob, meta.epoch, meta.hasEpoch, err}
		}(i, t)
	}
	exact := c.Policy.exact()
	merged := engine.NewPartial(q)
	var missing []string
	epochs := make(map[string]uint64, len(targets))
	allEpochs := true
	for n := 0; n < len(targets); n++ {
		o := <-ch
		t := targets[o.idx]
		if o.err == nil {
			if o.hasEpoch {
				epochs[t.Partition] = o.epoch
				c.ObserveEpoch(t.Partition, o.epoch)
			} else {
				allEpochs = false
			}
			var mstart time.Time
			if c.Metrics != nil {
				mstart = time.Now()
			}
			if err := engine.MergeWire(merged, o.blob); err != nil {
				// A corrupt partial is terminal even under degradation: the
				// accumulator may have absorbed a prefix of its groups, so
				// the merged state can no longer be trusted.
				c.count("netexec.query.failed")
				return nil, nil, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, err)
			}
			if c.Metrics != nil {
				c.Metrics.Histogram("netexec.merge.latency").Observe(time.Since(mstart).Seconds())
			}
			continue
		}
		if exact {
			c.count("netexec.query.failed")
			return nil, nil, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, o.err)
		}
		missing = append(missing, t.Partition)
	}
	_, finSpan := c.Tracer.StartSpan(ctx, "coordinator.finalize")
	res := merged.Finalize()
	finSpan.End()
	if len(missing) > 0 {
		coverage := float64(len(targets)-len(missing)) / float64(len(targets))
		if coverage < c.Policy.MinCoverage {
			c.count("netexec.query.failed")
			sort.Strings(missing)
			return nil, nil, fmt.Errorf("%w: coverage %.3f below policy minimum %.3f (missing: %s)",
				ErrWorkerFailed, coverage, c.Policy.MinCoverage, strings.Join(missing, ", "))
		}
		sort.Strings(missing)
		res.Coverage = coverage
		res.MissingPartitions = missing
		c.count("netexec.query.degraded")
		allEpochs = false
	}
	if !allEpochs {
		epochs = nil
	}
	return res, epochs, nil
}

// partialOpts parameterizes a partial fetch for top-k pushdown: kPrime > 0
// stamps the negotiation header (the worker may prune to its local top
// k′), keys marks a second-phase fetch for exactly those hex-encoded group
// keys. The zero value is a plain full-partial fetch.
type partialOpts struct {
	kPrime int
	keys   []string
}

// partialMeta is everything a /partial response carries besides the blob:
// the ingest epoch and, when top-k was negotiated, the worker's threshold
// bound (hasThreshold — the partial was pruned), its complete ack (had
// ≤ k′ groups), and how many groups pruning dropped.
type partialMeta struct {
	epoch        uint64
	hasEpoch     bool
	threshold    float64
	hasThreshold bool
	complete     bool
	dropped      int
}

// fetchResilient fetches one partition's wire partial under the policy:
// attempts rotate over the target's primary and replicas with capped,
// jittered exponential backoff between retries; each attempt may hedge to
// a replica after the hedge delay; breaker-open hosts are skipped. Errors
// classify as retryable or terminal (ClassifyError); terminal errors and
// query-context expiry end the loop immediately.
func (c *Coordinator) fetchResilient(ctx context.Context, t Target, q *engine.Query, opts partialOpts) ([]byte, partialMeta, error) {
	body, err := json.Marshal(struct {
		Partition string        `json:"partition"`
		Query     *engine.Query `json:"query"`
		TopKKeys  []string      `json:"topk_keys,omitempty"`
	}{t.Partition, q, opts.keys})
	if err != nil {
		return nil, partialMeta{}, err
	}
	urls := t.urls()
	attempts := c.Policy.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, partialMeta{}, lastErr
		}
		start := time.Now()
		blob, meta, url, err := c.fetchAttempt(ctx, urls, a, body, opts.kPrime)
		if err == nil {
			if c.Breakers != nil {
				c.Breakers.ReportSuccess(url)
			}
			c.observeLatency(time.Since(start))
			return blob, meta, nil
		}
		lastErr = err
		if ClassifyError(err) == Terminal || ctx.Err() != nil {
			return nil, partialMeta{}, lastErr
		}
		if a < attempts-1 {
			c.count("netexec.fetch.retries")
			if serr := sleepCtx(ctx, jitter(c.Policy.backoffFor(a))); serr != nil {
				return nil, partialMeta{}, lastErr
			}
		}
	}
	return nil, partialMeta{}, lastErr
}

// pickURL chooses the attempt's URL: rotate through the candidates
// starting at the attempt index, skipping hosts whose breaker is open. If
// every breaker rejects, the rotation's first choice is forced anyway — a
// probe beats certain failure.
func (c *Coordinator) pickURL(urls []string, attempt int) string {
	n := len(urls)
	for k := 0; k < n; k++ {
		u := urls[(attempt+k)%n]
		if c.Breakers == nil || c.Breakers.Allow(u) {
			if k > 0 {
				c.count("netexec.breaker.skips")
			}
			return u
		}
	}
	c.count("netexec.breaker.forced")
	return urls[attempt%n]
}

// hedgeCandidate returns a replica to hedge to: the next breaker-allowed
// URL after the rotation point that is not the primary, or "".
func (c *Coordinator) hedgeCandidate(urls []string, attempt int, primary string) string {
	n := len(urls)
	for k := 1; k <= n; k++ {
		u := urls[(attempt+k)%n]
		if u == primary {
			continue
		}
		if c.Breakers == nil || c.Breakers.Allow(u) {
			return u
		}
	}
	return ""
}

// fetchAttempt performs one (possibly hedged) attempt: issue the request
// to the rotation's URL, and if it stays outstanding past the hedge delay,
// re-issue it to a replica and take whichever answers first, cancelling
// the loser. Returns the blob and the URL that produced it; on failure the
// error is the last failure observed and url names its host. Per-URL
// failures are reported to the breaker group as they happen.
func (c *Coordinator) fetchAttempt(ctx context.Context, urls []string, attempt int, body []byte, kPrime int) (blob []byte, meta partialMeta, url string, err error) {
	primary := c.pickURL(urls, attempt)
	var actx context.Context
	var cancel context.CancelFunc
	if c.Policy.PerTryTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.Policy.PerTryTimeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type res struct {
		blob []byte
		meta partialMeta
		url  string
		err  error
	}
	// Buffered to the maximum in-flight count so the losing request's
	// goroutine never blocks after the winner returns.
	ch := make(chan res, 2)
	// Each in-flight request gets its own fetch span (child of the
	// partition span carried by ctx/actx): the attrs say which host, which
	// try and whether it was the primary or the hedge, and a losing hedge
	// half ends StatusCanceled when the winner's return cancels actx.
	launch := func(u, role string, breakerSkip bool) {
		go func() {
			fctx, fspan := c.Tracer.StartSpan(actx, "fetch")
			fspan.SetAttr("url", u)
			fspan.SetAttr("role", role)
			fspan.SetAttrInt("try", int64(attempt+1))
			if breakerSkip {
				fspan.SetAttr("breaker_skip", "true")
			}
			b, m, e := c.doPartial(fctx, u, body, kPrime)
			fspan.EndErr(e)
			ch <- res{b, m, u, e}
		}()
	}
	launch(primary, "primary", primary != urls[attempt%len(urls)])
	inflight := 1

	var timerC <-chan time.Time
	if d := c.hedgeDelay(); d > 0 && len(urls) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timerC = timer.C
	}
	hedged := false
	var lastErr error
	lastURL := primary
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if hedged && r.url != primary {
					c.count("netexec.fetch.hedge_wins")
				}
				return r.blob, r.meta, r.url, nil
			}
			// Don't poison the breaker when the query itself was abandoned.
			if c.Breakers != nil && !errors.Is(r.err, context.Canceled) {
				c.Breakers.ReportFailure(r.url)
			}
			lastErr, lastURL = r.err, r.url
			if inflight == 0 {
				return nil, partialMeta{}, lastURL, lastErr
			}
		case <-timerC:
			timerC = nil
			if u := c.hedgeCandidate(urls, attempt, primary); u != "" {
				hedged = true
				c.count("netexec.fetch.hedges")
				launch(u, "hedge", false)
				inflight++
			}
		}
	}
}

// doPartial performs one HTTP partial fetch against a worker URL with the
// response read bounded by MaxPartialBytes. The transport advertises gzip
// and transparently decompresses, so large partials cross the wire
// compressed without any handling here.
func (c *Coordinator) doPartial(ctx context.Context, url string, body []byte, kPrime int) ([]byte, partialMeta, error) {
	var meta partialMeta
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/partial", bytes.NewReader(body))
	if err != nil {
		return nil, meta, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate trace context so the worker's spans join this query's
	// trace (the fetch span in ctx becomes their remote parent).
	trace.Inject(ctx, req.Header)
	// Propagate admission metadata so worker-side quotas account the
	// right tenant at the right priority.
	if meta := admission.MetaFrom(ctx); meta.Tenant != "" || meta.Priority != 0 {
		if meta.Tenant != "" {
			req.Header.Set(HeaderTenant, meta.Tenant)
		}
		if meta.Priority != 0 {
			req.Header.Set(HeaderPriority, strconv.Itoa(meta.Priority))
		}
	}
	if c.NoFold {
		req.Header.Set(HeaderFold, "off")
	}
	if CacheBypassed(ctx) {
		req.Header.Set(HeaderCache, "off")
	}
	if kPrime > 0 {
		req.Header.Set(HeaderTopK, strconv.Itoa(kPrime))
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, meta, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, meta, &HTTPStatusError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
	}
	if h := resp.Header.Get(HeaderEpoch); h != "" {
		if e, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			meta.epoch, meta.hasEpoch = e, true
		}
	}
	if h := resp.Header.Get(HeaderTopKThreshold); h != "" {
		if t, perr := strconv.ParseFloat(h, 64); perr == nil {
			meta.threshold, meta.hasThreshold = t, true
		}
	}
	meta.complete = resp.Header.Get(HeaderTopKComplete) != ""
	if h := resp.Header.Get(HeaderTopKDropped); h != "" {
		meta.dropped, _ = strconv.Atoi(h)
	}
	limit := c.maxPartialBytes()
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, meta, err
	}
	if int64(len(data)) > limit {
		return nil, meta, &PartialSizeError{Limit: limit}
	}
	return data, meta, nil
}

// DefaultAdminTimeout bounds admin calls (partition create, ingest) made
// through a Client that did not supply its own http.Client. The old
// fallback was http.DefaultClient, which has no timeout at all — one hung
// worker stalled the load path forever.
const DefaultAdminTimeout = 30 * time.Second

var defaultAdminClient = &http.Client{Timeout: DefaultAdminTimeout}

// Client is a convenience HTTP client for worker admin operations. All
// methods take a context; pass context.Background() when no deadline or
// cancellation applies (the default client still enforces
// DefaultAdminTimeout).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return defaultAdminClient
}

func (cl *Client) checkResp(path string, resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		// Keep the status structured so callers can classify the failure:
		// a fenced partition's 503 is retryable, a schema error's 400 is
		// terminal.
		return fmt.Errorf("%w: %s: %w", ErrWorkerFailed, path,
			&HTTPStatusError{Status: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))})
	}
	return nil
}

// do posts and returns the response headers (valid even on error) so
// callers can read the ingest-epoch header off successful loads.
func (cl *Client) do(ctx context.Context, path, contentType string, body []byte) (http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := cl.http().Do(req)
	var hdr http.Header
	if resp != nil {
		hdr = resp.Header
	}
	return hdr, cl.checkResp(path, resp, err)
}

func (cl *Client) post(ctx context.Context, path string, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = cl.do(ctx, path, "application/json", body)
	return err
}

// epochFromHeader parses the worker's X-Cubrick-Epoch response header.
func epochFromHeader(hdr http.Header) (uint64, bool) {
	if hdr == nil {
		return 0, false
	}
	h := hdr.Get(HeaderEpoch)
	if h == "" {
		return 0, false
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// CreatePartition creates a partition on the worker.
func (cl *Client) CreatePartition(ctx context.Context, name string, schema brick.Schema) error {
	return cl.post(ctx, "/partition", struct {
		Name   string     `json:"name"`
		Schema SchemaJSON `json:"schema"`
	}{name, FromSchema(schema)})
}

// Load ingests rows into a partition on the worker via the JSON endpoint.
// Bulk paths should prefer LoadBin.
func (cl *Client) Load(ctx context.Context, partition string, dims [][]uint32, metrics [][]float64) error {
	rows := make([]rowJSON, len(dims))
	for i := range dims {
		rows[i] = rowJSON{Dims: dims[i], Metrics: metrics[i]}
	}
	return cl.post(ctx, "/load", struct {
		Partition string    `json:"partition"`
		Rows      []rowJSON `json:"rows"`
	}{partition, rows})
}

// LoadBin ingests rows into a partition through the binary columnar batch
// endpoint: one packed blob, one request, one store lock on the worker.
func (cl *Client) LoadBin(ctx context.Context, partition string, dims [][]uint32, metrics [][]float64) error {
	_, _, err := cl.LoadBinEpoch(ctx, partition, dims, metrics)
	return err
}

// LoadBinEpoch is LoadBin returning the partition's post-ingest epoch from
// the X-Cubrick-Epoch response header (ok=false against workers that
// predate the header). Coordinators feed it to ObserveEpoch so cached
// results over the partition invalidate the moment the load commits.
func (cl *Client) LoadBinEpoch(ctx context.Context, partition string, dims [][]uint32, metrics [][]float64) (uint64, bool, error) {
	blob, err := EncodeBatch(partition, dims, metrics)
	if err != nil {
		return 0, false, err
	}
	hdr, err := cl.do(ctx, "/loadbin", "application/octet-stream", blob)
	if err != nil {
		return 0, false, err
	}
	e, ok := epochFromHeader(hdr)
	return e, ok, nil
}
