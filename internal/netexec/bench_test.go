package netexec

// Distributed data-plane benchmarks: coordinator-side merge (old barrier
// algorithm vs streaming zero-copy MergeWire), bulk ingest (JSON per-row
// vs binary columnar batch), and end-to-end scatter-gather fan-out over
// httptest workers. scripts/bench.sh runs these and records the results
// in BENCH_netexec.json so the repo's perf trajectory is tracked.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
	"cubrick/internal/randutil"
	"cubrick/internal/trace"
)

func benchSchema() brick.Schema {
	return brick.Schema{
		Dimensions: []brick.Dimension{
			{Name: "ds", Max: 256, Buckets: 8},
			{Name: "app", Max: 64, Buckets: 4},
		},
		Metrics: []brick.Metric{{Name: "value"}},
	}
}

func benchQuery() *engine.Query {
	return &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value"},
			{Func: engine.Avg, Metric: "value"},
		},
		GroupBy: []string{"ds", "app"},
	}
}

// benchRows builds one worker's row-major data, seeded per worker so
// group keys overlap heavily across workers (the coordinator's merge is
// dominated by repeated-group folding, as in real scatter-gather).
func benchRows(worker, rows int) (dims [][]uint32, mets [][]float64) {
	rnd := randutil.New(int64(worker) + 1)
	dims = make([][]uint32, rows)
	mets = make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dims[i] = []uint32{uint32(rnd.Intn(256)), uint32(rnd.Intn(64))}
		mets[i] = []float64{float64(rnd.Intn(1 << 16))}
	}
	return dims, mets
}

// benchBlobs marshals nWorkers wire partials for the query, each from its
// own partition's data — the coordinator-side merge workload with the
// network removed.
func benchBlobs(b *testing.B, nWorkers, rowsPerWorker int, q *engine.Query) [][]byte {
	b.Helper()
	blobs := make([][]byte, nWorkers)
	for w := 0; w < nWorkers; w++ {
		st, err := brick.NewStore(benchSchema())
		if err != nil {
			b.Fatal(err)
		}
		dims, mets := benchRows(w, rowsPerWorker)
		if err := st.InsertBatchRows(dims, mets); err != nil {
			b.Fatal(err)
		}
		p, err := engine.Execute(st, q)
		if err != nil {
			b.Fatal(err)
		}
		if blobs[w], err = p.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
	return blobs
}

// benchMergeBarrier is the pre-streaming coordinator algorithm: decode
// every blob into an intermediate Partial, then merge serially.
func benchMergeBarrier(b *testing.B, nWorkers int) {
	q := benchQuery()
	blobs := benchBlobs(b, nWorkers, 4096, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := engine.NewPartial(q)
		for _, blob := range blobs {
			p, err := engine.UnmarshalPartial(q, blob)
			if err != nil {
				b.Fatal(err)
			}
			if err := merged.Merge(p); err != nil {
				b.Fatal(err)
			}
		}
		if merged.Groups() == 0 {
			b.Fatal("empty merge")
		}
	}
}

// benchMergeStream is the streaming zero-copy path: every blob folds
// straight into the accumulator via MergeWire.
func benchMergeStream(b *testing.B, nWorkers int) {
	q := benchQuery()
	blobs := benchBlobs(b, nWorkers, 4096, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := engine.NewPartial(q)
		for _, blob := range blobs {
			if err := engine.MergeWire(merged, blob); err != nil {
				b.Fatal(err)
			}
		}
		if merged.Groups() == 0 {
			b.Fatal("empty merge")
		}
	}
}

func BenchmarkMergeBarrier16(b *testing.B) { benchMergeBarrier(b, 16) }
func BenchmarkMergeStream16(b *testing.B)  { benchMergeStream(b, 16) }
func BenchmarkMergeBarrier64(b *testing.B) { benchMergeBarrier(b, 64) }
func BenchmarkMergeStream64(b *testing.B)  { benchMergeStream(b, 64) }

// benchIngest ships the same 8192-row batch to an httptest worker over
// the JSON row-at-a-time endpoint or the binary columnar one.
func benchIngest(b *testing.B, binary bool) {
	w := NewWorker()
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	dims, mets := benchRows(0, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		part := fmt.Sprintf("p%d", i)
		if err := cl.CreatePartition(context.Background(), part, benchSchema()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var err error
		if binary {
			err = cl.LoadBin(context.Background(), part, dims, mets)
		} else {
			err = cl.Load(context.Background(), part, dims, mets)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(8192, "rows_per_op")
}

func BenchmarkIngestJSON(b *testing.B)   { benchIngest(b, false) }
func BenchmarkIngestBinary(b *testing.B) { benchIngest(b, true) }

// benchFanout measures the full scatter-gather: n httptest workers, one
// partition each, streamed merge on the coordinator. With observed set,
// the whole observability plane is live — tracer and histogram registry on
// the coordinator and every worker, a root span per query, trace headers
// on the wire — so Observed-vs-plain is the tracing+metrics overhead the
// PR budgets at <=3%.
func benchFanout(b *testing.B, nWorkers int, observed bool) {
	var targets []Target
	var servers []*httptest.Server
	for i := 0; i < nWorkers; i++ {
		w := NewWorker()
		if observed {
			w.Tracer = trace.New(trace.Config{})
			w.Metrics = metrics.NewRegistry()
		}
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		part := fmt.Sprintf("t#%d", i)
		cl := &Client{BaseURL: srv.URL}
		if err := cl.CreatePartition(context.Background(), part, benchSchema()); err != nil {
			b.Fatal(err)
		}
		dims, mets := benchRows(i, 2048)
		if err := cl.LoadBin(context.Background(), part, dims, mets); err != nil {
			b.Fatal(err)
		}
		targets = append(targets, Target{URL: srv.URL, Partition: part})
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	coord := NewCoordinator(nWorkers)
	var tracer *trace.Tracer
	if observed {
		tracer = trace.New(trace.Config{})
		coord.Tracer = tracer
		coord.Metrics = metrics.NewRegistry()
	}
	q := benchQuery()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qctx, root := ctx, (*trace.Span)(nil)
		if observed {
			qctx, root = tracer.StartSpan(ctx, "coordinator.query")
		}
		res, err := coord.Query(qctx, targets, q)
		root.EndErr(err)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQueryFanout4(b *testing.B)          { benchFanout(b, 4, false) }
func BenchmarkQueryFanout16(b *testing.B)         { benchFanout(b, 16, false) }
func BenchmarkQueryFanout64(b *testing.B)         { benchFanout(b, 64, false) }
func BenchmarkQueryFanout64Observed(b *testing.B) { benchFanout(b, 64, true) }
