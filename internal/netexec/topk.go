// Coordinator side of distributed top-k pushdown.
//
// For an eligible ORDER BY <aggregate> LIMIT k query, phase 1 fans out
// with the X-Cubrick-TopK: k′ header (k′ = TopKOverfetch × k): each worker
// prunes its partial to the local top k′ groups and reports the threshold
// bounding everything it did not send. The engine.TopKMerger certifies the
// global top k from those bounds. When bounds don't certify, exactly one
// second phase fetches the uncertain keys from the workers missing them
// (threshold-algorithm style); when even that cannot certify — groups no
// worker surfaced could still displace the top k — the coordinator falls
// back to a plain full-partial fan-out, which is always correct.
//
// Pushdown only runs under exact failure semantics with no dual-read
// targets: degradation drops partitions (breaking the bound math), and a
// dual read already doubles the fetch. Workers that ignore the header
// simply ship full partials; the certifier treats those as complete
// contributions, so mixed fleets stay correct.

package netexec

import (
	"context"
	"encoding/hex"
	"fmt"

	"cubrick/internal/engine"
)

// topkEligible reports whether this query, under this coordinator's
// policy, against these targets, should attempt top-k pushdown.
func (c *Coordinator) topkEligible(targets []Target, q *engine.Query) bool {
	if c.TopKOverfetch <= 0 {
		return false
	}
	if _, ok := engine.TopKSpecFor(q); !ok {
		return false
	}
	if !c.Policy.exact() {
		return false
	}
	for _, t := range targets {
		if len(t.Dual) > 0 {
			return false
		}
	}
	return true
}

// queryTopK runs the two-phase pushdown. handled=false means the
// coordinator should fall back to the full fan-out (bounds could not
// certify a top k); the phase-1 work is sunk cost, correctness is not.
// The epochs map is non-nil only for single-phase certifications with a
// complete epoch vector — a second phase mixes per-partition epochs, so
// its result must not enter the result cache.
func (c *Coordinator) queryTopK(ctx context.Context, targets []Target, q *engine.Query) (*engine.Result, map[string]uint64, bool, error) {
	m, ok := engine.NewTopKMerger(q)
	if !ok {
		return nil, nil, false, nil
	}
	ctx, span := c.Tracer.StartSpan(ctx, "coordinator.topk")
	kPrime := q.Limit * c.TopKOverfetch
	span.SetAttrInt("k", int64(q.Limit))
	span.SetAttrInt("k_prime", int64(kPrime))
	c.count("netexec.topk.queries")

	type outcome struct {
		idx  int
		blob []byte
		meta partialMeta
		err  error
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(targets))
	for i, t := range targets {
		go func(i int, t Target) {
			pctx, pspan := c.Tracer.StartSpan(fctx, "partition")
			pspan.SetAttr("partition", t.Partition)
			pspan.SetAttr("topk", "phase1")
			blob, meta, err := c.fetchResilient(pctx, t, q, partialOpts{kPrime: kPrime})
			pspan.EndErr(err)
			ch <- outcome{i, blob, meta, err}
		}(i, t)
	}
	// workerTarget maps the merger's worker index back to the target it
	// came from, for second-phase routing.
	workerTarget := make([]int, 0, len(targets))
	epochs := make(map[string]uint64, len(targets))
	allEpochs := true
	for n := 0; n < len(targets); n++ {
		o := <-ch
		t := targets[o.idx]
		if o.err != nil {
			cancel()
			c.count("netexec.query.failed")
			span.EndErr(o.err)
			return nil, nil, true, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, o.err)
		}
		if o.meta.hasEpoch {
			epochs[t.Partition] = o.meta.epoch
			c.ObserveEpoch(t.Partition, o.meta.epoch)
		} else {
			allEpochs = false
		}
		p, err := engine.UnmarshalPartial(q, o.blob)
		if err != nil {
			cancel()
			c.count("netexec.query.failed")
			span.EndErr(err)
			return nil, nil, true, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, err)
		}
		if o.meta.hasThreshold && p.GroupCount() > 0 {
			// Wire-savings estimate: dropped groups at the pruned blob's
			// observed bytes-per-group rate (uncompressed).
			c.countAdd("netexec.topk.bytes_saved",
				int64(o.meta.dropped)*int64(len(o.blob))/int64(p.GroupCount()))
		}
		wi, err := m.Add(p, o.meta.threshold, o.meta.hasThreshold)
		if err != nil {
			span.EndErr(err)
			return nil, nil, true, err
		}
		for len(workerTarget) <= wi {
			workerTarget = append(workerTarget, 0)
		}
		workerTarget[wi] = o.idx
	}

	res := m.Resolve()
	phase2 := false
	if !res.Certified && !res.UnseenBlocked && len(res.NeedKeys) > 0 {
		phase2 = true
		c.count("netexec.topk.second_phase")
		span.SetAttrInt("phase2_workers", int64(len(res.NeedKeys)))
		type p2outcome struct {
			worker int
			keys   []string
			blob   []byte
			err    error
		}
		p2ch := make(chan p2outcome, len(res.NeedKeys))
		for wi, keys := range res.NeedKeys {
			go func(wi int, keys []string) {
				t := targets[workerTarget[wi]]
				hexKeys := make([]string, len(keys))
				for i, k := range keys {
					hexKeys[i] = hex.EncodeToString([]byte(k))
				}
				pctx, pspan := c.Tracer.StartSpan(fctx, "partition")
				pspan.SetAttr("partition", t.Partition)
				pspan.SetAttr("topk", "phase2")
				pspan.SetAttrInt("keys", int64(len(keys)))
				blob, _, err := c.fetchResilient(pctx, t, q, partialOpts{keys: hexKeys})
				pspan.EndErr(err)
				p2ch <- p2outcome{wi, keys, blob, err}
			}(wi, keys)
		}
		for n := 0; n < cap(p2ch); n++ {
			o := <-p2ch
			t := targets[workerTarget[o.worker]]
			if o.err != nil {
				cancel()
				c.count("netexec.query.failed")
				span.EndErr(o.err)
				return nil, nil, true, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, o.err)
			}
			p, err := engine.UnmarshalPartial(q, o.blob)
			if err != nil {
				cancel()
				c.count("netexec.query.failed")
				span.EndErr(err)
				return nil, nil, true, fmt.Errorf("%w: %s %s: %w", ErrWorkerFailed, t.URL, t.Partition, err)
			}
			if err := m.AddResolved(o.worker, p, o.keys); err != nil {
				span.EndErr(err)
				return nil, nil, true, err
			}
		}
		res = m.Resolve()
	}

	if !res.Certified {
		// UnseenBlocked (directly, or after the second phase): only full
		// partials can recover the groups nobody surfaced.
		c.count("netexec.topk.fallback")
		span.SetAttr("outcome", "fallback")
		span.End()
		return nil, nil, false, nil
	}
	c.count("netexec.topk.certified")
	span.SetAttr("outcome", "certified")
	span.SetAttr("phase2", boolStr(phase2))
	final := res.Result.Finalize()
	span.End()
	if phase2 || !allEpochs {
		epochs = nil
	}
	return final, epochs, true, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
