// Worker-side global-dictionary plane: the HTTP surface that keeps the
// store-wide string↔id dictionaries consistent across nodes. String
// dimensions travel the wire as uint32 codes everywhere (partials, brick
// transfers); the dictionaries that give those codes meaning replicate as
// append-only deltas on the same machinery migration uses — version
// negotiation, idempotent pushes, and a decoder hardened against forged
// payloads (see internal/dict).
package netexec

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"cubrick/internal/dict"
)

// HeaderDictVersion carries a dictionary's current version (number of
// assigned ids) on /dict responses, so a syncing peer knows how far the
// delta it just fetched brings it.
const HeaderDictVersion = "X-Cubrick-Dict-Version"

// maxDictDeltaBytes bounds one pushed dictionary delta; far above any real
// delta (values are capped at 64 KiB each by the codec) but a stop against
// unbounded request bodies.
const maxDictDeltaBytes = 64 << 20

// Dicts returns the partition's dictionary set, creating an empty one on
// first use. Dictionaries are per-partition like stores, so a migration
// ships exactly the dictionaries its partition's columns need.
func (w *Worker) Dicts(partition string) *dict.Set {
	w.dictMu.Lock()
	defer w.dictMu.Unlock()
	if w.dicts == nil {
		w.dicts = make(map[string]*dict.Set)
	}
	s, ok := w.dicts[partition]
	if !ok {
		s = dict.NewSet()
		w.dicts[partition] = s
	}
	return s
}

// EnsureDict registers (or returns) the dictionary for a partition column.
// capacity 0 falls back to the column's schema domain when the column names
// a dimension of the partition's store.
func (w *Worker) EnsureDict(partition, col string, capacity uint32) (*dict.Dictionary, error) {
	if capacity == 0 {
		if st, err := w.Store(partition); err == nil {
			schema := st.Schema()
			if i := schema.DimIndex(col); i >= 0 {
				capacity = schema.Dimensions[i].Max
			}
		}
	}
	if capacity == 0 {
		capacity = w.DictCapacity
	}
	if capacity == 0 {
		return nil, fmt.Errorf("netexec: no capacity for dictionary %s.%s", partition, col)
	}
	return w.Dicts(partition).Add(col, capacity), nil
}

// registerDict wires the dictionary-sync endpoints onto the worker mux.
//
//	GET  /dict?partition=P                         → {"versions":{col:n,...}}
//	GET  /dict?partition=P&col=C&since=N           → delta blob [N, version)
//	POST /dict?partition=P&col=C[&capacity=K]      → apply delta body
//
// Every operation is idempotent: re-fetching a delta is a read, re-pushing
// one re-verifies the overlap and appends nothing.
func (w *Worker) registerDict(mux *http.ServeMux) {
	mux.HandleFunc("/dict", func(rw http.ResponseWriter, r *http.Request) {
		partition := r.URL.Query().Get("partition")
		col := r.URL.Query().Get("col")
		switch r.Method {
		case http.MethodGet:
			if col == "" {
				rw.Header().Set("Content-Type", "application/json")
				json.NewEncoder(rw).Encode(struct {
					Versions map[string]uint64 `json:"versions"`
				}{w.Dicts(partition).Versions()})
				return
			}
			d := w.Dicts(partition).Get(col)
			if d == nil {
				http.Error(rw, fmt.Sprintf("no dictionary %s.%s", partition, col), http.StatusNotFound)
				return
			}
			var since uint64
			if s := r.URL.Query().Get("since"); s != "" {
				v, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					http.Error(rw, "bad since: "+err.Error(), http.StatusBadRequest)
					return
				}
				since = v
			}
			blob, err := d.ExportDelta(since)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			rw.Header().Set("Content-Type", "application/octet-stream")
			rw.Header().Set(HeaderDictVersion, strconv.FormatUint(d.Version(), 10))
			w.countAdd("worker.dict.export.requests", 1)
			w.countAdd("worker.dict.export.bytes", int64(len(blob)))
			rw.Write(blob)
		case http.MethodPost:
			if col == "" {
				http.Error(rw, "col required", http.StatusBadRequest)
				return
			}
			var capacity uint32
			if c := r.URL.Query().Get("capacity"); c != "" {
				v, err := strconv.ParseUint(c, 10, 32)
				if err != nil {
					http.Error(rw, "bad capacity: "+err.Error(), http.StatusBadRequest)
					return
				}
				capacity = uint32(v)
			}
			d, err := w.EnsureDict(partition, col, capacity)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusNotFound)
				return
			}
			blob, err := io.ReadAll(io.LimitReader(r.Body, maxDictDeltaBytes+1))
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			if len(blob) > maxDictDeltaBytes {
				http.Error(rw, "dictionary delta too large", http.StatusRequestEntityTooLarge)
				return
			}
			version, err := d.ApplyDelta(blob)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			rw.Header().Set(HeaderDictVersion, strconv.FormatUint(version, 10))
			w.countAdd("worker.dict.import.requests", 1)
			fmt.Fprintf(rw, `{"version":%d}`, version)
		default:
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// --- client side -----------------------------------------------------------

// DictVersions reads every dictionary version of a partition on the worker.
func (cl *Client) DictVersions(ctx context.Context, partition string) (map[string]uint64, error) {
	body, _, err := cl.get(ctx, "/dict?partition="+url.QueryEscape(partition))
	if err != nil {
		return nil, err
	}
	var out struct {
		Versions map[string]uint64 `json:"versions"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out.Versions, nil
}

// DictDelta fetches a column dictionary's delta since the given version,
// returning the blob and the version it brings the receiver to.
func (cl *Client) DictDelta(ctx context.Context, partition, col string, since uint64) ([]byte, uint64, error) {
	path := "/dict?partition=" + url.QueryEscape(partition) +
		"&col=" + url.QueryEscape(col) + "&since=" + strconv.FormatUint(since, 10)
	blob, hdr, err := cl.get(ctx, path)
	if err != nil {
		return nil, 0, err
	}
	version, _ := strconv.ParseUint(hdr.Get(HeaderDictVersion), 10, 64)
	return blob, version, nil
}

// PushDictDelta applies a dictionary delta to a partition column on the
// worker (creating the dictionary at the given capacity if absent) and
// returns the worker's resulting version.
func (cl *Client) PushDictDelta(ctx context.Context, partition, col string, capacity uint32, blob []byte) (uint64, error) {
	path := "/dict?partition=" + url.QueryEscape(partition) + "&col=" + url.QueryEscape(col)
	if capacity > 0 {
		path += "&capacity=" + strconv.FormatUint(uint64(capacity), 10)
	}
	hdr, err := cl.do(ctx, path, "application/octet-stream", blob)
	if err != nil {
		return 0, err
	}
	version, _ := strconv.ParseUint(hdr.Get(HeaderDictVersion), 10, 64)
	return version, nil
}
