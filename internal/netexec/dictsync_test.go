package netexec

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDictSyncPlane drives the /dict wire plane end-to-end: a source worker
// assigns ids, a target catches up via version negotiation + delta push, and
// incremental deltas after further assignment converge the replicas again.
func TestDictSyncPlane(t *testing.T) {
	src := NewWorker()
	dst := NewWorker()
	srcSrv := httptest.NewServer(src.Handler())
	defer srcSrv.Close()
	dstSrv := httptest.NewServer(dst.Handler())
	defer dstSrv.Close()
	srcCl := &Client{BaseURL: srcSrv.URL}
	dstCl := &Client{BaseURL: dstSrv.URL}
	ctx := context.Background()

	for _, cl := range []*Client{srcCl, dstCl} {
		if err := cl.CreatePartition(ctx, "p", testSchema()); err != nil {
			t.Fatal(err)
		}
	}

	// Source assigns some ids on the "app" dimension (capacity from schema).
	sd, err := src.EnsureDict("p", "app", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"ads", "feed", "search"} {
		if _, err := sd.Encode(v); err != nil {
			t.Fatal(err)
		}
	}

	versions, err := srcCl.DictVersions(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	if versions["app"] != 3 {
		t.Fatalf("source versions = %v, want app:3", versions)
	}

	// Full catch-up from zero.
	blob, to, err := srcCl.DictDelta(ctx, "p", "app", 0)
	if err != nil {
		t.Fatal(err)
	}
	if to != 3 {
		t.Fatalf("delta brings receiver to %d, want 3", to)
	}
	got, err := dstCl.PushDictDelta(ctx, "p", "app", 0, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("push version = %d, want 3", got)
	}
	// Re-pushing the same delta is idempotent.
	if got, err = dstCl.PushDictDelta(ctx, "p", "app", 0, blob); err != nil || got != 3 {
		t.Fatalf("idempotent re-push: version=%d err=%v", got, err)
	}

	// Incremental delta after more assignment.
	if _, err := sd.Encode("groups"); err != nil {
		t.Fatal(err)
	}
	blob, to, err = srcCl.DictDelta(ctx, "p", "app", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dstCl.PushDictDelta(ctx, "p", "app", 0, blob); err != nil {
		t.Fatal(err)
	}
	if to != 4 {
		t.Fatalf("incremental delta version = %d, want 4", to)
	}
	dd := dst.Dicts("p").Get("app")
	if dd == nil || dd.Version() != 4 {
		t.Fatalf("target dictionary missing or stale: %v", dd)
	}
	for id, want := range []string{"ads", "feed", "search", "groups"} {
		v, err := dd.Decode(uint32(id))
		if err != nil || v != want {
			t.Fatalf("target id %d = %q (%v), want %q", id, v, err, want)
		}
	}

	// A forged delta (same ids, different values) is rejected whole.
	forged := append([]byte(nil), blob...)
	for i := range forged[4:] {
		if forged[4+i] == 'g' {
			forged[4+i] = 'X'
		}
	}
	if _, err := dstCl.PushDictDelta(ctx, "p", "app", 0, forged); err == nil {
		t.Fatal("forged delta accepted")
	} else if !strings.Contains(err.Error(), "forges") && !strings.Contains(err.Error(), "400") {
		t.Fatalf("forged delta error = %v", err)
	}

	// Unknown column 404s on GET.
	if _, _, err := srcCl.DictDelta(ctx, "p", "nope", 0); err == nil {
		t.Fatal("delta for unknown dictionary succeeded")
	}
}

// TestEnsureDictCapacity pins the capacity resolution order: explicit >
// schema dimension domain > worker default > error.
func TestEnsureDictCapacity(t *testing.T) {
	w := NewWorker()
	if err := w.AddPartition("p", testSchema()); err != nil {
		t.Fatal(err)
	}
	d, err := w.EnsureDict("p", "app", 7)
	if err != nil || d.Capacity() != 7 {
		t.Fatalf("explicit capacity: %v cap=%d", err, d.Capacity())
	}
	d, err = w.EnsureDict("p", "ds", 0)
	if err != nil || d.Capacity() != 30 {
		t.Fatalf("schema capacity: %v, want 30", err)
	}
	if _, err := w.EnsureDict("p", "label", 0); err == nil {
		t.Fatal("no-capacity column accepted without worker default")
	}
	w.DictCapacity = 1000
	d, err = w.EnsureDict("p", "label", 0)
	if err != nil || d.Capacity() != 1000 {
		t.Fatalf("worker default capacity: %v, want 1000", err)
	}
}
