package netexec

import (
	"context"
	"net/http/httptest"
	"testing"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
)

// realtimeWorker spins one HTTP worker (optionally rollup-enabled) holding
// one partition, returning its target, its metrics registry and a client.
func realtimeWorker(t *testing.T, part string, rollup bool) (Target, *metrics.Registry, *Client, func()) {
	t.Helper()
	w := NewWorker()
	w.Metrics = metrics.NewRegistry()
	if rollup {
		w.RollupTimeDim = "ds"
		w.RollupBucket = 5
		w.RollupDistinct = []string{"app"}
	}
	srv := httptest.NewServer(w.Handler())
	cl := &Client{BaseURL: srv.URL}
	if err := cl.CreatePartition(context.Background(), part, testSchema()); err != nil {
		t.Fatal(err)
	}
	return Target{URL: srv.URL, Partition: part}, w.Metrics, cl, srv.Close
}

func loadRows(t *testing.T, cl *Client, part string, whole *brick.Store, rows [][3]float64) {
	t.Helper()
	var dims [][]uint32
	var mets [][]float64
	for _, r := range rows {
		d := []uint32{uint32(r[0]), uint32(r[1])}
		m := []float64{r[2]}
		dims = append(dims, d)
		mets = append(mets, m)
		if whole != nil {
			if err := whole.Insert(d, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Load(context.Background(), part, dims, mets); err != nil {
		t.Fatal(err)
	}
}

func queryEqual(t *testing.T, got, want *engine.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: got %d want %d\ngot %v\nwant %v", len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestTopKPushdownSinglePhase: a query whose phase-1 bounds certify
// directly; the pushdown answer is bit-identical to the full fan-out.
func TestTopKPushdownSinglePhase(t *testing.T) {
	targets, whole, cleanup := startCluster(t, 3, 900)
	defer cleanup()
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value", Alias: "total"},
			{Func: engine.Count},
		},
		GroupBy: []string{"app"},
		OrderBy: "total",
		Desc:    true,
		Limit:   3,
	}
	reg := metrics.NewRegistry()
	coord := &Coordinator{TopKOverfetch: 4, Metrics: reg}
	got, err := coord.Query(context.Background(), targets, q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Execute(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got, ref.Finalize())
	c := reg.CounterValues()
	if c["netexec.topk.queries"] != 1 || c["netexec.topk.certified"] != 1 {
		t.Fatalf("counters: %v", c)
	}
	if c["netexec.topk.fallback"] != 0 {
		t.Fatalf("unexpected fallback: %v", c)
	}
}

// TestTopKPushdownSecondPhase constructs a skew where a group's global
// winner is outside one worker's local top-k′: certification requires the
// targeted second-phase fetch, and the answer stays exact.
func TestTopKPushdownSecondPhase(t *testing.T) {
	t1, _, cl1, stop1 := realtimeWorker(t, "t#0", false)
	defer stop1()
	t2, _, cl2, stop2 := realtimeWorker(t, "t#1", false)
	defer stop2()
	whole, _ := brick.NewStore(testSchema())
	// Worker 0: app 1 dominates (100); app 2 hides below the shipped top-1
	// (5) with threshold 10 from app 3. Worker 1: app 2 leads (90) over
	// app 4 (8). Globally app 1 (100) beats app 2 (95), but phase 1 alone
	// cannot prove it: app 2's upper bound is 90+10 = 100, not strictly
	// below. The unseen bound 10+8 = 18 stays far under, so the resolver
	// fetches app 2 from worker 0 instead of falling back.
	loadRows(t, cl1, "t#0", whole, [][3]float64{{0, 1, 100}, {1, 2, 5}, {2, 3, 10}})
	loadRows(t, cl2, "t#1", whole, [][3]float64{{0, 2, 90}, {1, 4, 8}})
	q := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value", Alias: "total"}},
		GroupBy:    []string{"app"},
		OrderBy:    "total",
		Desc:       true,
		Limit:      1,
	}
	reg := metrics.NewRegistry()
	coord := &Coordinator{TopKOverfetch: 1, Metrics: reg}
	got, err := coord.Query(context.Background(), []Target{t1, t2}, q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Execute(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got, ref.Finalize())
	if got.Rows[0][0] != 1 || got.Rows[0][1] != 100 {
		t.Fatalf("want app 1 total 100, got %v", got.Rows[0])
	}
	c := reg.CounterValues()
	if c["netexec.topk.second_phase"] != 1 || c["netexec.topk.certified"] != 1 {
		t.Fatalf("counters: %v", c)
	}
}

// TestTopKPushdownFallback: thresholds so heavy that a group no worker
// surfaced could still win; the coordinator must fall back to full
// partials and still return the exact answer.
func TestTopKPushdownFallback(t *testing.T) {
	t1, _, cl1, stop1 := realtimeWorker(t, "t#0", false)
	defer stop1()
	t2, _, cl2, stop2 := realtimeWorker(t, "t#1", false)
	defer stop2()
	whole, _ := brick.NewStore(testSchema())
	// Unsent mass 90+45 = 135 exceeds the provisional winner (100): a
	// group unseen by the coordinator could hold up to 135.
	loadRows(t, cl1, "t#0", whole, [][3]float64{{0, 1, 100}, {1, 2, 90}})
	loadRows(t, cl2, "t#1", whole, [][3]float64{{0, 3, 50}, {1, 4, 45}})
	q := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value", Alias: "total"}},
		GroupBy:    []string{"app"},
		OrderBy:    "total",
		Desc:       true,
		Limit:      1,
	}
	reg := metrics.NewRegistry()
	coord := &Coordinator{TopKOverfetch: 1, Metrics: reg}
	got, err := coord.Query(context.Background(), []Target{t1, t2}, q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Execute(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got, ref.Finalize())
	c := reg.CounterValues()
	if c["netexec.topk.fallback"] != 1 {
		t.Fatalf("expected fallback, counters: %v", c)
	}
}

// TestRollupServedPartialFreshness: a rollup-enabled worker answers an
// aligned dashboard query from its pre-aggregates, and rows ingested at
// epoch E are reflected in the very next rollup-served answer — freshness
// within one epoch, asserted, not sampled.
func TestRollupServedPartialFreshness(t *testing.T) {
	target, reg, cl, stop := realtimeWorker(t, "t#0", true)
	defer stop()
	whole, _ := brick.NewStore(testSchema())
	var rows [][3]float64
	for i := 0; i < 300; i++ {
		rows = append(rows, [3]float64{float64(i % 30), float64(i % 20), float64(i)})
	}
	loadRows(t, cl, "t#0", whole, rows)
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value"},
			{Func: engine.Count},
			{Func: engine.CountDistinct, Metric: "app"},
		},
		Filter: map[string][2]uint32{"ds": {0, 9}}, // two whole 5-buckets
	}
	coord := &Coordinator{}
	got, err := coord.Query(context.Background(), []Target{target}, q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.ExecuteParallel(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got, ref.Finalize())
	c := reg.CounterValues()
	if c["worker.rollup.hits"] != 1 {
		t.Fatalf("expected a rollup hit, counters: %v", c)
	}

	// Fresh ingest, then query again immediately: the rollup-served
	// answer must include every row of the new epoch.
	loadRows(t, cl, "t#0", whole, [][3]float64{{2, 7, 1000}, {7, 7, 1000}})
	got2, err := coord.Query(context.Background(), []Target{target}, q)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := engine.ExecuteParallel(whole, q)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got2, ref2.Finalize())
	if got2.Rows[0][0] != got.Rows[0][0]+2000 {
		t.Fatalf("fresh rows missing: %v -> %v", got.Rows[0], got2.Rows[0])
	}
	c = reg.CounterValues()
	if c["worker.rollup.hits"] != 2 {
		t.Fatalf("second query not rollup-served: %v", c)
	}
	if c["worker.rollup.errors"] != 0 {
		t.Fatalf("rollup errors: %v", c)
	}

	// An unaligned window still answers exactly (hybrid edge scans), and
	// X-Cubrick-Cache: off bypasses the rollup entirely.
	q2 := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value"}},
		Filter:     map[string][2]uint32{"ds": {2, 13}},
	}
	got3, err := coord.Query(context.Background(), []Target{target}, q2)
	if err != nil {
		t.Fatal(err)
	}
	ref3, err := engine.ExecuteParallel(whole, q2)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got3, ref3.Finalize())
	hitsBefore := reg.CounterValues()["worker.rollup.hits"]
	got4, err := coord.Query(WithCacheBypass(context.Background()), []Target{target}, q2)
	if err != nil {
		t.Fatal(err)
	}
	queryEqual(t, got4, ref3.Finalize())
	if reg.CounterValues()["worker.rollup.hits"] != hitsBefore {
		t.Fatal("cache bypass still hit the rollup")
	}
}
