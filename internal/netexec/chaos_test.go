package netexec

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"testing"
	"time"

	"cubrick/internal/cluster"
	"cubrick/internal/engine"
	"cubrick/internal/metrics"
	"cubrick/internal/randutil"
)

// chaosConfig is the fault model the chaos tests drive into real HTTP:
// every request fails with the given probability, as the paper's "other
// non-deterministic sources of tail latency and errors" (§I).
func chaosConfig(failProb float64) cluster.TransportConfig {
	return cluster.TransportConfig{
		Latency:            randutil.DefaultLatencyModel(),
		RequestFailureProb: failProb,
		NetworkHop:         200 * time.Microsecond,
	}
}

// startReplicatedCluster spins nServers real HTTP workers and spreads
// `partitions` partitions over them: partition p's primary is server
// p%nServers and its single replica is the next server on the ring, with
// identical rows loaded to both copies. rowsPerPartition rows land in each
// partition. Returns the targets and the expected whole-table row count.
func startReplicatedCluster(t *testing.T, nServers, partitions, rowsPerPartition int) ([]Target, float64, func()) {
	t.Helper()
	if nServers < 2 {
		t.Fatal("replicated cluster needs at least 2 servers")
	}
	servers := make([]*httptest.Server, nServers)
	clients := make([]*Client, nServers)
	for i := range servers {
		servers[i] = httptest.NewServer(NewWorker().Handler())
		clients[i] = &Client{BaseURL: servers[i].URL}
	}
	ctx := context.Background()
	targets := make([]Target, partitions)
	for p := 0; p < partitions; p++ {
		part := fmt.Sprintf("t#%d", p)
		primary, replica := p%nServers, (p+1)%nServers
		dims := make([][]uint32, rowsPerPartition)
		mets := make([][]float64, rowsPerPartition)
		for r := 0; r < rowsPerPartition; r++ {
			dims[r] = []uint32{uint32(p+r) % 30, uint32(r) % 20}
			mets[r] = []float64{float64(r)}
		}
		for _, i := range []int{primary, replica} {
			if err := clients[i].CreatePartition(ctx, part, testSchema()); err != nil {
				t.Fatal(err)
			}
			if err := clients[i].LoadBin(ctx, part, dims, mets); err != nil {
				t.Fatal(err)
			}
		}
		targets[p] = Target{
			URL:       servers[primary].URL,
			Partition: part,
			Replicas:  []string{servers[replica].URL},
		}
	}
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	return targets, float64(partitions * rowsPerPartition), cleanup
}

// runChaosQueries issues n count(*) queries through coord and returns the
// fraction that succeeded with the exact expected count.
func runChaosQueries(t *testing.T, coord *Coordinator, targets []Target, wantRows float64, n int) float64 {
	t.Helper()
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	ok := 0
	for i := 0; i < n; i++ {
		res, err := coord.Query(context.Background(), targets, q)
		if err != nil {
			continue
		}
		if res.Rows[0][0] != wantRows {
			t.Fatalf("query %d returned wrong count %v (want %v): corruption, not just failure", i, res.Rows[0][0], wantRows)
		}
		ok++
	}
	return float64(ok) / float64(n)
}

// TestChaosSuccessRate is the acceptance experiment: with a seeded 2%%
// per-request failure probability at fan-out 64 (one replica per
// partition), the resilient coordinator must stay >= 99%% successful while
// the brittle baseline — whose success decays as (1-p)^n, the paper's
// scalability wall — is materially lower.
func TestChaosSuccessRate(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos experiment is statistical; skipped in -short")
	}
	const (
		failProb = 0.02
		queries  = 100
		seed     = 42
	)
	for _, fanout := range []int{4, 16, 64} {
		fanout := fanout
		t.Run(fmt.Sprintf("fanout=%d", fanout), func(t *testing.T) {
			nServers := 8
			if fanout < nServers {
				nServers = fanout
			}
			targets, wantRows, cleanup := startReplicatedCluster(t, nServers, fanout, 50)
			defer cleanup()

			baselineRT := NewFaultRoundTripper(nil, chaosConfig(failProb), seed)
			baseline := &Coordinator{Client: &http.Client{Transport: baselineRT}}
			baseRate := runChaosQueries(t, baseline, targets, wantRows, queries)

			resilientRT := NewFaultRoundTripper(nil, chaosConfig(failProb), seed)
			resilient := &Coordinator{
				Client: &http.Client{Transport: resilientRT},
				Policy: QueryPolicy{
					MaxAttempts: 4,
					BaseBackoff: time.Millisecond,
					MaxBackoff:  4 * time.Millisecond,
					MinCoverage: 1,
				},
				Breakers: NewBreakerGroup(DefaultBreakerConfig()),
				Metrics:  metrics.NewRegistry(),
			}
			resRate := runChaosQueries(t, resilient, targets, wantRows, queries)

			t.Logf("fanout %d: baseline %.2f, resilient %.2f", fanout, baseRate, resRate)
			if resRate < 0.99 {
				t.Fatalf("resilient success rate %.3f < 0.99 at fanout %d", resRate, fanout)
			}
			// The wall: baseline success ~ (1-p)^n. At fanout 64 that is
			// ~0.27; the bound leaves wide statistical slack.
			if fanout == 64 {
				if baseRate > 0.7 {
					t.Fatalf("baseline success rate %.3f unexpectedly high; fault injection is not biting", baseRate)
				}
				if resRate <= baseRate {
					t.Fatalf("resilience did not improve on baseline: %.3f vs %.3f", resRate, baseRate)
				}
			}
		})
	}
}

// TestChaosBreakerSkipsDownHost: a host marked down via the fault injector
// keeps failing until its breaker opens; after that, queries route
// straight to the replica without burning attempts on the dead primary.
func TestChaosBreakerSkipsDownHost(t *testing.T) {
	targets, wantRows, cleanup := startReplicatedCluster(t, 2, 1, 40)
	defer cleanup()

	rt := NewFaultRoundTripper(nil, chaosConfig(0), 1)
	pu, err := url.Parse(targets[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetHostDown(pu.Host, true)

	reg := metrics.NewRegistry()
	coord := &Coordinator{
		Client:   &http.Client{Transport: rt},
		Policy:   QueryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
		Breakers: NewBreakerGroupAt(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Hour, HalfOpenSuccesses: 1}, time.Now),
		Metrics:  reg,
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	for i := 0; i < 4; i++ {
		res, err := coord.Query(context.Background(), targets, q)
		if err != nil {
			t.Fatalf("query %d failed despite replica: %v", i, err)
		}
		if res.Rows[0][0] != wantRows {
			t.Fatalf("query %d count = %v", i, res.Rows[0][0])
		}
	}
	if st := coord.Breakers.State(targets[0].URL); st != BreakerOpen {
		t.Fatalf("dead primary breaker state = %v, want open", st)
	}
	if skips := reg.CounterValues()["netexec.breaker.skips"]; skips < 1 {
		t.Fatalf("breaker never skipped the dead primary (skips=%d)", skips)
	}
	// Recovery: host comes back, breaker half-opens after the timeout. Use
	// a fresh group with an elapsed clock to avoid sleeping in the test.
	rt.SetHostDown(pu.Host, false)
	base := time.Now()
	coord.Breakers = NewBreakerGroupAt(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Millisecond, HalfOpenSuccesses: 1},
		func() time.Time { return base.Add(time.Second) })
	if _, err := coord.Query(context.Background(), targets, q); err != nil {
		t.Fatalf("query after host recovery failed: %v", err)
	}
}

// TestResilienceBench is the bench harness behind scripts/bench.sh: when
// RESILIENCE_BENCH_OUT is set it measures success rate and p99 latency
// under injected faults at fan-out 4/16/64, with and without the
// resilience layer, and writes the results as JSON.
func TestResilienceBench(t *testing.T) {
	out := os.Getenv("RESILIENCE_BENCH_OUT")
	if out == "" {
		t.Skip("set RESILIENCE_BENCH_OUT to run the resilience bench")
	}
	const (
		failProb = 0.02
		queries  = 100
		seed     = 7
	)
	type row struct {
		Fanout      int     `json:"fanout"`
		Mode        string  `json:"mode"`
		FailProb    float64 `json:"fail_prob"`
		Queries     int     `json:"queries"`
		SuccessRate float64 `json:"success_rate"`
		P50Ms       float64 `json:"p50_ms"`
		P99Ms       float64 `json:"p99_ms"`
	}
	var rows []row
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Count}}}
	for _, fanout := range []int{4, 16, 64} {
		nServers := 8
		if fanout < nServers {
			nServers = fanout
		}
		targets, wantRows, cleanup := startReplicatedCluster(t, nServers, fanout, 50)
		for _, mode := range []string{"baseline", "resilient"} {
			rt := NewFaultRoundTripper(nil, chaosConfig(failProb), seed)
			// A small latency scale keeps the heavy-tail *shape* of the
			// model while staying test-fast.
			rt.LatencyScale = 0.001
			coord := &Coordinator{Client: &http.Client{Transport: rt}}
			if mode == "resilient" {
				coord.Policy = QueryPolicy{
					MaxAttempts:   4,
					BaseBackoff:   time.Millisecond,
					MaxBackoff:    4 * time.Millisecond,
					HedgeQuantile: 0.95,
					HedgeMinDelay: 5 * time.Millisecond,
					MinCoverage:   1,
				}
				coord.Breakers = NewBreakerGroup(DefaultBreakerConfig())
				coord.Metrics = metrics.NewRegistry()
			}
			ok := 0
			lats := make([]float64, 0, queries)
			for i := 0; i < queries; i++ {
				start := time.Now()
				res, err := coord.Query(context.Background(), targets, q)
				lats = append(lats, float64(time.Since(start).Microseconds())/1000)
				if err == nil && res.Rows[0][0] == wantRows {
					ok++
				}
			}
			sort.Float64s(lats)
			rows = append(rows, row{
				Fanout:      fanout,
				Mode:        mode,
				FailProb:    failProb,
				Queries:     queries,
				SuccessRate: float64(ok) / float64(queries),
				P50Ms:       lats[len(lats)/2],
				P99Ms:       lats[len(lats)*99/100],
			})
		}
		cleanup()
	}
	blob, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "netexec resilience under injected faults",
		"results":   rows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
