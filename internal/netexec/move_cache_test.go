package netexec

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"cubrick/internal/core"
	"cubrick/internal/engine"
)

// TestResultCacheAcrossOwnershipFlip pins the migration/result-cache
// contract: a cached result is keyed to the old placement's epoch vector,
// so after an ownership flip it must revalidate against the new owner or
// miss — never serve stale rows. The new owner here holds MORE rows than
// the source did when the result was cached; a stale serve would return
// the old sum.
func TestResultCacheAcrossOwnershipFlip(t *testing.T) {
	cluster, _, cleanup := startCachingCluster(t, 2, 600)
	defer cleanup()
	ctx := context.Background()
	coord := cluster.Coordinator()

	q := &engine.Query{
		Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value", Alias: "total"}, {Func: engine.Count, Alias: "n"}},
	}
	cold, err := cluster.Query(ctx, "events", q)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := cluster.Query(ctx, "events", q)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultRowsEqual(cold, warm); err != nil {
		t.Fatal(err)
	}
	if st := coord.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("warm query hits = %d, want 1", st.Hits)
	}

	// Hand-run a migration of partition 0 to a joiner: snapshot-ship the
	// bricks, then land extra rows ONLY on the new owner — the divergence
	// a stale cached result would hide.
	joiner := httptest.NewServer(NewWorker().Handler())
	defer joiner.Close()
	if !cluster.AddWorker(joiner.URL) {
		t.Fatal("joiner not added")
	}
	part := core.PartitionName("events", 0)
	urls, _, err := cluster.PartitionPlacement("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	src := &Client{BaseURL: urls[0]}
	dst := &Client{BaseURL: joiner.URL}
	schema, err := src.PartitionSchema(ctx, part)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.CreatePartition(ctx, part, schema); err != nil {
		t.Fatal(err)
	}
	blob, covered, err := src.Export(ctx, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportBricks(ctx, part, blob, covered); err != nil {
		t.Fatal(err)
	}
	const extra = 90
	var extraSum float64
	dims := make([][]uint32, extra)
	mets := make([][]float64, extra)
	for i := 0; i < extra; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
		extraSum += float64(i)
	}
	if err := dst.Load(ctx, part, dims, mets); err != nil {
		t.Fatal(err)
	}

	// The flip: reroute, open the dual-read window, reset the known
	// epoch, and invalidate every cached result the partition fed.
	cluster.MovePartition(part, []string{joiner.URL}, 200*time.Millisecond)
	if st := coord.ResultCache.Stats(); st.Invalidations == 0 {
		t.Fatal("flip invalidated nothing")
	}

	after, err := cluster.Query(ctx, "events", q)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := warm.Rows[0][0] + extraSum
	wantN := warm.Rows[0][1] + extra
	if after.Rows[0][0] != wantSum || after.Rows[0][1] != wantN {
		t.Fatalf("post-flip result (sum=%v n=%v) served stale data, want sum=%v n=%v",
			after.Rows[0][0], after.Rows[0][1], wantSum, wantN)
	}
	if st := coord.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("post-flip query hit the stale cache (hits=%d)", st.Hits)
	}

	// The recomputed result re-caches against the NEW owner's epochs and
	// serves hits again.
	again, err := cluster.Query(ctx, "events", q)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultRowsEqual(after, again); err != nil {
		t.Fatal(err)
	}
	if st := coord.ResultCache.Stats(); st.Hits != 2 {
		t.Fatalf("re-cached result did not hit (hits=%d)", st.Hits)
	}
}
