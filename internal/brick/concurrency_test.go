package brick

import (
	"sync"
	"testing"
)

// TestConcurrentInsertScanCompress hammers one store from parallel
// writers, readers and a memory monitor; run with -race. Scans must only
// ever see internally consistent rows (correct arity, in-domain values).
func TestConcurrentInsertScanCompress(t *testing.T) {
	s, err := NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const readers = 4
	const perWriter = 2000
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint32(w*perWriter + i)
				if err := s.Insert([]uint32{v % 16, v % 100, v % 365}, []float64{1, 2}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				err := s.Scan(nil, func(dims []uint32, metrics []float64) error {
					if len(dims) != 3 || len(metrics) != 2 {
						t.Error("scan row arity corrupted")
					}
					if dims[0] >= 16 || dims[1] >= 100 || dims[2] >= 365 {
						t.Errorf("scan row out of domain: %v", dims)
					}
					return nil
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}
	// A memory monitor oscillating between pressure and surplus.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				s.EnsureBudget(1024, 0.8)
			} else {
				s.EnsureBudget(1<<62, 1.0)
			}
			s.DecayHotness(0.9)
		}
	}()
	wg.Wait()

	if s.Rows() != writers*perWriter {
		t.Fatalf("rows = %d, want %d", s.Rows(), writers*perWriter)
	}
	// Final full scan sees every row.
	count := 0
	s.Scan(nil, func([]uint32, []float64) error { count++; return nil })
	if count != writers*perWriter {
		t.Fatalf("final scan saw %d rows, want %d", count, writers*perWriter)
	}
}

// TestConcurrentExport runs migrations (Export) against live traffic.
func TestConcurrentExport(t *testing.T) {
	s, _ := NewStore(testSchema())
	for i := uint32(0); i < 2000; i++ {
		s.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{1, 1})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				blob, err := s.Export()
				if err != nil {
					t.Errorf("export: %v", err)
					return
				}
				dst, _ := NewStore(testSchema())
				if err := dst.Import(blob); err != nil {
					t.Errorf("import: %v", err)
					return
				}
				if dst.Rows() < 2000 {
					t.Errorf("imported %d rows, want ≥ 2000", dst.Rows())
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(0); i < 500; i++ {
			s.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{1, 1})
		}
	}()
	wg.Wait()
}
