package brick

import (
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		Dimensions: []Dimension{
			{Name: "region", Max: 16, Buckets: 4},
			{Name: "app", Max: 100, Buckets: 10},
			{Name: "day", Max: 365, Buckets: 73},
		},
		Metrics: []Metric{{Name: "events"}, {Name: "bytes"}},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{},
		{Dimensions: []Dimension{{Name: "", Max: 4, Buckets: 2}}},
		{Dimensions: []Dimension{{Name: "a", Max: 0, Buckets: 1}}},
		{Dimensions: []Dimension{{Name: "a", Max: 4, Buckets: 0}}},
		{Dimensions: []Dimension{{Name: "a", Max: 2, Buckets: 4}}},
		{Dimensions: []Dimension{{Name: "a", Max: 4, Buckets: 2}, {Name: "a", Max: 4, Buckets: 2}}},
		{Dimensions: []Dimension{{Name: "a", Max: 4, Buckets: 2}}, Metrics: []Metric{{Name: ""}}},
		{Dimensions: []Dimension{{Name: "a", Max: 4, Buckets: 2}}, Metrics: []Metric{{Name: "a"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d validated", i)
		}
	}
}

func TestIndexHelpers(t *testing.T) {
	s := testSchema()
	if s.DimIndex("app") != 1 || s.DimIndex("nope") != -1 {
		t.Fatal("DimIndex broken")
	}
	if s.MetricIndex("bytes") != 1 || s.MetricIndex("nope") != -1 {
		t.Fatal("MetricIndex broken")
	}
	if s.RowBytes() != 3*4+2*8 {
		t.Fatalf("RowBytes = %d", s.RowBytes())
	}
}

func TestBrickIDBounds(t *testing.T) {
	s := testSchema()
	id, err := s.BrickID([]uint32{0, 0, 0})
	if err != nil || id != 0 {
		t.Fatalf("BrickID(origin) = %d, %v", id, err)
	}
	// Max corner: region 15 -> bucket 3, app 99 -> bucket 9, day 364 -> 72.
	id, err = s.BrickID([]uint32{15, 99, 364})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(3)*10*73 + uint64(9)*73 + 72
	if id != want {
		t.Fatalf("BrickID(max) = %d, want %d", id, want)
	}
	if _, err := s.BrickID([]uint32{16, 0, 0}); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	if _, err := s.BrickID([]uint32{0, 0}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// Property: every row's dimension values fall within the bounds of the
// brick BrickID assigns it to.
func TestBrickIDBoundsConsistencyProperty(t *testing.T) {
	s := testSchema()
	f := func(a, b, c uint32) bool {
		dims := []uint32{a % 16, b % 100, c % 365}
		id, err := s.BrickID(dims)
		if err != nil {
			return false
		}
		bounds, err := s.BrickBounds(id)
		if err != nil {
			return false
		}
		for i, d := range dims {
			if d < bounds[i][0] || d > bounds[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBrickBoundsRejectsOutOfRange(t *testing.T) {
	s := testSchema()
	if _, err := s.BrickBounds(4 * 10 * 73); err == nil {
		t.Fatal("out-of-range brick id accepted")
	}
}

func TestInsertAndScanAll(t *testing.T) {
	s, err := NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		if err := s.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{1, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rows() != 100 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	var count int
	var sum float64
	err = s.Scan(nil, func(dims []uint32, metrics []float64) error {
		count++
		sum += metrics[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 || sum != 100 {
		t.Fatalf("scan visited %d rows sum %v", count, sum)
	}
}

func TestInsertValidation(t *testing.T) {
	s, _ := NewStore(testSchema())
	if err := s.Insert([]uint32{0, 0, 0}, []float64{1}); err == nil {
		t.Fatal("wrong metric arity accepted")
	}
	if err := s.Insert([]uint32{99, 0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("out-of-domain dim accepted")
	}
}

func TestScanWithFilterPrunes(t *testing.T) {
	s, _ := NewStore(testSchema())
	for r := uint32(0); r < 16; r++ {
		for a := uint32(0); a < 10; a++ {
			s.Insert([]uint32{r, a * 10, 0}, []float64{1, 0})
		}
	}
	// region in [4,7] is exactly bucket 1.
	f := &Filter{Ranges: map[int][2]uint32{0: {4, 7}}}
	var count int
	s.Scan(f, func(dims []uint32, metrics []float64) error {
		if dims[0] < 4 || dims[0] > 7 {
			t.Fatalf("row outside filter: %v", dims)
		}
		count++
		return nil
	})
	if count != 4*10 {
		t.Fatalf("filtered scan visited %d rows, want 40", count)
	}
}

func TestFilterSemantics(t *testing.T) {
	f := &Filter{Ranges: map[int][2]uint32{0: {5, 10}}}
	if f.Matches([]uint32{4}) || !f.Matches([]uint32{5}) || !f.Matches([]uint32{10}) || f.Matches([]uint32{11}) {
		t.Fatal("Matches boundaries wrong")
	}
	var nilF *Filter
	if !nilF.Matches([]uint32{0}) {
		t.Fatal("nil filter must match everything")
	}
	if !nilF.overlaps([][2]uint32{{0, 1}}) || !nilF.covers([][2]uint32{{0, 1}}) {
		t.Fatal("nil filter must overlap and cover")
	}
	if !f.overlaps([][2]uint32{{10, 20}}) || f.overlaps([][2]uint32{{11, 20}}) {
		t.Fatal("overlaps boundaries wrong")
	}
	if !f.covers([][2]uint32{{6, 9}}) || f.covers([][2]uint32{{4, 9}}) {
		t.Fatal("covers boundaries wrong")
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	s, _ := NewStore(testSchema())
	for i := uint32(0); i < 1000; i++ {
		s.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{float64(i), float64(i) * 0.5})
	}
	memBefore := s.MemoryBytes()
	// Compress everything.
	c, d, err := s.EnsureBudget(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c == 0 || d != 0 {
		t.Fatalf("EnsureBudget(0) compressed %d decompressed %d", c, d)
	}
	if s.CompressedBrickCount() != s.BrickCount() {
		t.Fatal("not all bricks compressed")
	}
	if s.MemoryBytes() >= memBefore {
		t.Fatalf("compression did not shrink memory: %d -> %d", memBefore, s.MemoryBytes())
	}
	// Scanning compressed data returns identical results.
	var sum float64
	if err := s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil }); err != nil {
		t.Fatal(err)
	}
	want := float64(999*1000) / 2
	if sum != want {
		t.Fatalf("sum over compressed store = %v, want %v", sum, want)
	}
	if s.Decompressions() == 0 {
		t.Fatal("scan over compressed bricks did not count decompressions")
	}
	// Scan must not have changed stored state.
	if s.CompressedBrickCount() != s.BrickCount() {
		t.Fatal("scan decompressed bricks permanently")
	}
}

func TestAdaptiveCompressionHotColdOrdering(t *testing.T) {
	s, _ := NewStore(testSchema())
	for i := uint32(0); i < 1600; i++ {
		s.Insert([]uint32{i % 16, (i / 16) % 100, 0}, []float64{1, 1})
	}
	// Heat bricks in region bucket 0 by scanning them repeatedly.
	hotFilter := &Filter{Ranges: map[int][2]uint32{0: {0, 3}}}
	for i := 0; i < 50; i++ {
		s.Scan(hotFilter, func([]uint32, []float64) error { return nil })
	}
	// Budget forces compressing roughly half the bricks.
	budget := s.MemoryBytes() / 2
	if _, _, err := s.EnsureBudget(budget, 0.9); err != nil {
		t.Fatal(err)
	}
	// The hot bricks must have survived uncompressed.
	for _, h := range s.HotnessSnapshot() {
		bounds, _ := s.Schema().BrickBounds(h.BrickID)
		isHot := bounds[0][0] == 0 // region bucket 0 covers values 0..3
		if isHot && h.Compressed {
			t.Fatalf("hot brick %d compressed while cold ones exist", h.BrickID)
		}
	}
	// Under surplus, hottest decompress first.
	comp := s.CompressedBrickCount()
	if comp == 0 {
		t.Fatal("test setup: nothing compressed")
	}
	_, d, err := s.EnsureBudget(s.UncompressedBytes()*2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("surplus did not decompress anything")
	}
	if s.CompressedBrickCount() >= comp {
		t.Fatal("decompression did not reduce compressed count")
	}
}

func TestDecayHotness(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{1, 1})
	s.Scan(nil, func([]uint32, []float64) error { return nil })
	h0 := s.HotnessSnapshot()[0].Hotness
	if h0 <= 0 {
		t.Fatal("no heat after scan")
	}
	s.DecayHotness(0.5)
	h1 := s.HotnessSnapshot()[0].Hotness
	if h1 != h0*0.5 {
		t.Fatalf("decay: %v -> %v, want halved", h0, h1)
	}
}

func TestInsertIntoCompressedBrickDecompresses(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{1, 2})
	s.EnsureBudget(0, 0.5)
	if s.CompressedBrickCount() != 1 {
		t.Fatal("setup: brick not compressed")
	}
	if err := s.Insert([]uint32{0, 0, 0}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil })
	if sum != 4 {
		t.Fatalf("sum after ingest into compressed brick = %v, want 4", sum)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := NewStore(testSchema())
	for i := uint32(0); i < 500; i++ {
		src.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{float64(i), 1})
	}
	// Compress some bricks to prove Export handles both representations.
	src.EnsureBudget(src.MemoryBytes()/2, 0.9)
	blob, err := src.Export()
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewStore(testSchema())
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if dst.Rows() != src.Rows() {
		t.Fatalf("imported %d rows, want %d", dst.Rows(), src.Rows())
	}
	var srcSum, dstSum float64
	src.Scan(nil, func(_ []uint32, m []float64) error { srcSum += m[0]; return nil })
	dst.Scan(nil, func(_ []uint32, m []float64) error { dstSum += m[0]; return nil })
	if srcSum != dstSum {
		t.Fatalf("sums differ after migration: %v != %v", srcSum, dstSum)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	s, _ := NewStore(testSchema())
	if err := s.Import([]byte("not a blob")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

// Property: inserting any batch of valid rows and summing metric 0 over a
// full scan equals the inserted sum, with and without compression.
func TestScanSumInvariantProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		s, _ := NewStore(testSchema())
		var want float64
		for _, v := range vals {
			dims := []uint32{uint32(v) % 16, uint32(v) % 100, uint32(v) % 365}
			m := float64(v%97) + 0.5
			if err := s.Insert(dims, []float64{m, 0}); err != nil {
				return false
			}
			want += m
		}
		sum := func() float64 {
			var got float64
			s.Scan(nil, func(_ []uint32, m []float64) error { got += m[0]; return nil })
			return got
		}
		if sum() != want {
			return false
		}
		s.EnsureBudget(0, 0.5) // compress everything
		return sum() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBrickCompressNoop(t *testing.T) {
	b := newBrick(1, 1)
	if err := b.Compress(); err != nil {
		t.Fatal(err)
	}
	if b.IsCompressed() {
		t.Fatal("empty brick claims compressed")
	}
	if err := b.Decompress(); err != nil {
		t.Fatal(err)
	}
}
