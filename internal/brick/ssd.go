package brick

import (
	"bytes"
	"compress/flate"
	"sort"
)

// Third-generation storage (§IV-F3): under sustained memory pressure,
// Cubrick not only compresses but also *evicts* data to SSD. An evicted
// brick's memory footprint is zero; queries touching it pay an SSD read
// (counted as IOPS — the metric the paper's team was investigating for
// load balancing) plus decompression. The working set is the set of bricks
// hot enough that they should stay memory-resident; if a host's memory
// cannot hold the working sets of all its shards, query latency
// deteriorates — the exact failure mode §IV-F3 describes.
//
// With adaptive per-column encodings the flate outer layer applies only
// here: warm bricks stay in the lightweight encoded tier and decode at
// bit-unpack speed, while the SSD payload is flate(encoded blob) so the
// on-disk format stays compact.

// Evict moves the brick to the SSD tier: it is encoded first if needed,
// the encoded blob is flate-compressed, and the memory footprint becomes
// zero. Empty bricks are not evicted.
func (b *Brick) Evict() error {
	if err := b.Compress(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ssd != nil {
		return nil // already evicted
	}
	if b.encoded == nil {
		return nil // empty brick
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := w.Write(b.encoded); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	b.ssd = out.Bytes()
	b.encLen = len(b.encoded)
	b.encoded = nil
	b.obs.add("brick.evictions", 1)
	return nil
}

// Unevict returns the brick to the in-memory encoded tier by inflating the
// SSD payload. If the payload turns out to be unreadable the brick simply
// stays evicted; the corruption surfaces as an error on the next scan.
func (b *Brick) Unevict() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ssd == nil {
		return
	}
	data, _, err := b.blobLocked(nil)
	if err != nil {
		return
	}
	b.encoded = data
	b.ssd = nil
	b.encLen = 0
	b.obs.add("brick.promotions", 1)
}

// IsEvicted reports whether the brick lives on the SSD tier.
func (b *Brick) IsEvicted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ssd != nil
}

// SSDBytes returns the brick's SSD footprint (zero unless evicted).
func (b *Brick) SSDBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(len(b.ssd))
}

// SSDBytes returns the store's total SSD footprint.
func (s *Store) SSDBytes() int64 {
	var sum int64
	for _, e := range s.snapshotBricks() {
		sum += e.b.SSDBytes()
	}
	return sum
}

// SSDReads returns how many scans had to read an evicted brick from SSD —
// the IOPS signal §IV-F3 considers adding to load balancing.
func (s *Store) SSDReads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ssdReads
}

// EvictedBrickCount returns how many bricks live on the SSD tier.
func (s *Store) EvictedBrickCount() int {
	n := 0
	for _, e := range s.snapshotBricks() {
		if e.b.IsEvicted() {
			n++
		}
	}
	return n
}

// WorkingSetBytes returns the decompressed size of all bricks whose
// hotness is at least hotThreshold — the memory the store *wants* resident
// for good latency.
func (s *Store) WorkingSetBytes(hotThreshold float64) int64 {
	var sum int64
	for _, e := range s.snapshotBricks() {
		if e.b.Hotness() >= hotThreshold {
			sum += e.b.UncompressedBytes(s.schema)
		}
	}
	return sum
}

// EnsureTiered is the three-tier memory monitor: while the resident
// footprint exceeds memBudget it first compresses the coldest uncompressed
// bricks, then evicts the coldest compressed bricks to SSD; under surplus
// it promotes the hottest evicted bricks back to memory. It returns counts
// of (compressed, evicted, promoted) bricks.
func (s *Store) EnsureTiered(memBudget int64, lowWater float64) (compressed, evicted, promoted int, err error) {
	type heatEntry struct {
		b    *Brick
		heat float64
	}
	var raw, inMem, onSSD []heatEntry
	for _, e := range s.snapshotBricks() {
		he := heatEntry{e.b, e.b.Hotness()}
		switch {
		case e.b.IsEvicted():
			onSSD = append(onSSD, he)
		case e.b.IsCompressed():
			inMem = append(inMem, he)
		default:
			raw = append(raw, he)
		}
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].heat < raw[j].heat })
	sort.Slice(inMem, func(i, j int) bool { return inMem[i].heat < inMem[j].heat })
	sort.Slice(onSSD, func(i, j int) bool { return onSSD[i].heat > onSSD[j].heat })

	mem := s.MemoryBytes()
	// Tier 1: compress coldest raw bricks.
	for _, he := range raw {
		if mem <= memBudget {
			break
		}
		before := he.b.MemoryBytes(s.schema)
		if err := he.b.Compress(); err != nil {
			return compressed, evicted, promoted, err
		}
		mem += he.b.MemoryBytes(s.schema) - before
		compressed++
	}
	// Tier 2: evict coldest compressed bricks to SSD. Bricks compressed
	// in tier 1 are candidates too, so merge both cold lists by heat.
	candidates := append(append([]heatEntry(nil), inMem...), raw...)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].heat < candidates[j].heat })
	for _, he := range candidates {
		if mem <= memBudget {
			break
		}
		if he.b.IsEvicted() || !he.b.IsCompressed() {
			continue
		}
		before := he.b.MemoryBytes(s.schema)
		if err := he.b.Evict(); err != nil {
			return compressed, evicted, promoted, err
		}
		mem -= before
		evicted++
	}
	if compressed > 0 || evicted > 0 {
		return compressed, evicted, promoted, nil
	}
	// Surplus: promote hottest evicted bricks back into memory.
	low := int64(lowWater * float64(memBudget))
	for _, he := range onSSD {
		grow := he.b.compressedLen()
		if mem+grow > low {
			continue
		}
		he.b.Unevict()
		mem += grow
		promoted++
	}
	return compressed, evicted, promoted, nil
}

// compressedLen returns the in-memory size the brick occupies (or would
// occupy, if evicted) when resident in the encoded tier.
func (b *Brick) compressedLen() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ssd != nil {
		return int64(b.encLen)
	}
	return int64(len(b.encoded))
}
