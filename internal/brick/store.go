package brick

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cubrick/internal/metrics"
)

// Filter restricts a scan to rows whose dimension values fall within the
// given inclusive ranges. A nil entry (or missing dimension) means
// unfiltered. Filters on bucket-aligned ranges enable whole-brick pruning.
type Filter struct {
	// Ranges maps dimension index -> [lo, hi] inclusive bounds.
	Ranges map[int][2]uint32
}

// Matches reports whether a row passes the filter.
func (f *Filter) Matches(dims []uint32) bool {
	if f == nil {
		return true
	}
	for i, r := range f.Ranges {
		v := dims[i]
		if v < r[0] || v > r[1] {
			return false
		}
	}
	return true
}

// MatchesAt reports whether row r of a columnar batch passes the filter,
// without materializing the row.
func (f *Filter) MatchesAt(dims [][]uint32, r int) bool {
	if f == nil {
		return true
	}
	for i, rng := range f.Ranges {
		v := dims[i][r]
		if v < rng[0] || v > rng[1] {
			return false
		}
	}
	return true
}

// overlaps reports whether a brick's bounds intersect the filter.
func (f *Filter) overlaps(bounds [][2]uint32) bool {
	if f == nil {
		return true
	}
	for i, r := range f.Ranges {
		b := bounds[i]
		if r[1] < b[0] || r[0] > b[1] {
			return false
		}
	}
	return true
}

// covers reports whether the filter fully contains the brick's bounds for
// every filtered dimension, in which case per-row checks can be skipped.
func (f *Filter) covers(bounds [][2]uint32) bool {
	if f == nil {
		return true
	}
	for i, r := range f.Ranges {
		b := bounds[i]
		if r[0] > b[0] || r[1] < b[1] {
			return false
		}
	}
	return true
}

// Store holds the bricks of one table partition on one server.
// It is safe for concurrent use.
type Store struct {
	schema Schema

	mu     sync.Mutex
	bricks map[uint64]*Brick
	rows   int64

	// decompressions counts transient decode work done by scans over
	// compressed bricks — the cost adaptive compression tries to avoid
	// for hot data (§IV-F2).
	decompressions int64
	// ssdReads counts scans that had to fetch an evicted brick from the
	// SSD tier (§IV-F3).
	ssdReads int64

	// obs fans encode/decode events from this store's bricks into an
	// optional metrics registry (see SetMetricsRegistry); shared by every
	// brick so late registry attachment reaches existing bricks.
	obs *storeObs

	// epoch is the store-wide monotonic ingest counter. Every row append
	// draws the owning brick's new epoch from it inside the brick's own
	// append critical section, so the store-level value is a cheap upper
	// summary: if Epoch() is unchanged, no brick changed. Import bumps it
	// too (fresh brick generation). Tier moves never touch it.
	epoch atomic.Uint64

	// gen counts brick-replacement events (Import/ImportBricks). Within one
	// generation bricks are append-only with stable row order, which is the
	// invariant incremental consumers (rollup watermarks) rely on; a bump
	// tells them their per-brick row marks are void and a full rebuild is
	// needed.
	gen atomic.Uint64

	// ingestObs is an optional hook invoked after every successful
	// Insert/InsertBatch, once the rows are appended and epochs stamped.
	// Rollup maintenance attaches here so pre-aggregates chase ingest.
	ingestObs atomic.Value // of func()

	// dcache holds the optional decoded-column cache, shared with every
	// brick so late attachment reaches existing bricks.
	dcache dcacheRef
}

// ErrGenerationChanged reports that a brick-replacing import raced with a
// VisitSince pass, invalidating the caller's row marks mid-visit.
var ErrGenerationChanged = fmt.Errorf("brick: store generation changed during visit")

// NewStore creates an empty store for the schema.
func NewStore(schema Schema) (*Store, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Store{schema: schema, bricks: make(map[uint64]*Brick), obs: &storeObs{}}, nil
}

// SetMetricsRegistry routes the store's encode/decode instrumentation
// (brick.encode.* counters, brick.decode.latency histogram) into reg. A
// nil registry detaches. Safe to call at any time, including concurrently
// with scans.
func (s *Store) SetMetricsRegistry(reg *metrics.Registry) {
	s.obs.reg.Store(reg)
}

// Schema returns the store's schema.
func (s *Store) Schema() Schema { return s.schema }

// Epoch returns the store-level ingest epoch summary: the highest epoch
// any brick has been stamped with. Two Epoch() reads with equal values
// bracket a window in which no row was ingested, which is exactly the
// validity condition result caches check. Reading it before executing a
// query yields a conservative tag: any ingest that lands mid-scan bumps
// the counter past the tag, so a result cached under the tag can never
// hide rows it did not see.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Generation returns the store's brick-replacement generation. It changes
// only when Import/ImportBricks swap brick contents wholesale; append-only
// ingest never touches it. Incremental consumers that track per-brick row
// watermarks (the rollup subsystem) compare generations to detect that
// their marks no longer describe the resident bricks.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// SetIngestObserver installs fn to be called after every successful
// Insert/InsertBatch, outside all store and brick locks. A nil fn
// detaches. The observer must tolerate concurrent invocations.
func (s *Store) SetIngestObserver(fn func()) {
	s.ingestObs.Store(fn)
}

func (s *Store) notifyIngest() {
	if v := s.ingestObs.Load(); v != nil {
		if fn := v.(func()); fn != nil {
			fn()
		}
	}
}

// SetDecodedCache attaches (or, with nil, detaches) a decoded-column
// cache: scans over compressed bricks consult it before paying the column
// decode, and pin their decode for the next scan. The cache may be shared
// by several stores — keys are per-brick-generation. Safe to call at any
// time, including concurrently with scans.
func (s *Store) SetDecodedCache(dc *DecodedCache) {
	s.dcache.store(dc)
}

// Rows returns the total number of stored rows.
func (s *Store) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// BrickCount returns the number of materialized bricks.
func (s *Store) BrickCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bricks)
}

// Insert adds one row. The row's dimension values determine its brick in
// O(1); if the brick is compressed it is decompressed first (ingest heats
// data).
func (s *Store) Insert(dims []uint32, metrics []float64) error {
	if len(metrics) != len(s.schema.Metrics) {
		return fmt.Errorf("brick: row has %d metrics, schema has %d", len(metrics), len(s.schema.Metrics))
	}
	id, err := s.schema.BrickID(dims)
	if err != nil {
		return err
	}
	s.mu.Lock()
	b, ok := s.bricks[id]
	if !ok {
		b = newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
		b.obs = s.obs
		b.epochSrc = &s.epoch
		b.dcache = &s.dcache
		s.bricks[id] = b
	}
	s.rows++
	s.mu.Unlock()

	if err := b.Decompress(); err != nil {
		return err
	}
	b.append(dims, metrics)
	b.Touch(1)
	s.notifyIngest()
	return nil
}

// InsertBatch ingests a column-major batch (dimCols[d][r], metricCols[m][r])
// in one pass: rows are routed to their bricks up front, the store lock is
// taken once to resolve/create every target brick and bump the row count,
// and each brick absorbs its rows under a single brick lock. This replaces
// per-row Insert locking on the bulk-ingest path.
//
// The whole batch is validated (arity, column lengths, dimension domains)
// before any row is written, so a bad batch is rejected atomically — unlike
// a per-row Insert loop, which leaves a prefix behind.
func (s *Store) InsertBatch(dimCols [][]uint32, metricCols [][]float64) error {
	if len(dimCols) != len(s.schema.Dimensions) {
		return fmt.Errorf("brick: batch has %d dim columns, schema has %d", len(dimCols), len(s.schema.Dimensions))
	}
	if len(metricCols) != len(s.schema.Metrics) {
		return fmt.Errorf("brick: batch has %d metric columns, schema has %d", len(metricCols), len(s.schema.Metrics))
	}
	rows := 0
	if len(dimCols) > 0 {
		rows = len(dimCols[0])
	}
	for _, col := range dimCols {
		if len(col) != rows {
			return fmt.Errorf("brick: ragged batch: dim column has %d rows, want %d", len(col), rows)
		}
	}
	for _, col := range metricCols {
		if len(col) != rows {
			return fmt.Errorf("brick: ragged batch: metric column has %d rows, want %d", len(col), rows)
		}
	}
	if rows == 0 {
		return nil
	}

	// Route every row to its brick; BrickID also validates domains, so the
	// routing pass doubles as whole-batch validation before any mutation.
	byBrick := make(map[uint64][]int)
	rowScratch := make([]uint32, len(dimCols))
	for r := 0; r < rows; r++ {
		for d := range dimCols {
			rowScratch[d] = dimCols[d][r]
		}
		id, err := s.schema.BrickID(rowScratch)
		if err != nil {
			// Name the offending row: batch callers (HTTP ingest) surface
			// this to clients who need to know which row to fix.
			return fmt.Errorf("row %d: %w", r, err)
		}
		byBrick[id] = append(byBrick[id], r)
	}

	type target struct {
		b   *Brick
		idx []int
	}
	targets := make([]target, 0, len(byBrick))
	s.mu.Lock()
	for id, idx := range byBrick {
		b, ok := s.bricks[id]
		if !ok {
			b = newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
			b.obs = s.obs
			b.epochSrc = &s.epoch
			b.dcache = &s.dcache
			s.bricks[id] = b
		}
		targets = append(targets, target{b, idx})
	}
	s.rows += int64(rows)
	s.mu.Unlock()

	for _, t := range targets {
		if err := t.b.Decompress(); err != nil {
			return err
		}
		t.b.appendColumns(dimCols, metricCols, t.idx)
		t.b.Touch(float64(len(t.idx))) // ingest heats data, one unit per row
	}
	s.notifyIngest()
	return nil
}

// InsertBatchRows is InsertBatch for row-major input (dims[r][d]); it
// transposes once and shares the single-lock batch path.
func (s *Store) InsertBatchRows(dims [][]uint32, metrics [][]float64) error {
	if len(dims) != len(metrics) {
		return fmt.Errorf("brick: batch has %d dim rows but %d metric rows", len(dims), len(metrics))
	}
	rows := len(dims)
	dimCols := make([][]uint32, len(s.schema.Dimensions))
	for d := range dimCols {
		dimCols[d] = make([]uint32, rows)
	}
	metricCols := make([][]float64, len(s.schema.Metrics))
	for m := range metricCols {
		metricCols[m] = make([]float64, rows)
	}
	for r := 0; r < rows; r++ {
		if len(dims[r]) != len(dimCols) {
			return fmt.Errorf("brick: row %d has %d dims, schema has %d", r, len(dims[r]), len(dimCols))
		}
		if len(metrics[r]) != len(metricCols) {
			return fmt.Errorf("brick: row %d has %d metrics, schema has %d", r, len(metrics[r]), len(metricCols))
		}
		for d := range dimCols {
			dimCols[d][r] = dims[r][d]
		}
		for m := range metricCols {
			metricCols[m][r] = metrics[r][m]
		}
	}
	return s.InsertBatch(dimCols, metricCols)
}

// snapshotBricks returns a stable view of (id, brick) pairs.
func (s *Store) snapshotBricks() []struct {
	id uint64
	b  *Brick
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]struct {
		id uint64
		b  *Brick
	}, 0, len(s.bricks))
	for id, b := range s.bricks {
		out = append(out, struct {
			id uint64
			b  *Brick
		}{id, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// VisitSince streams, brick by brick, every row appended past the caller's
// per-brick watermarks and advances the marks to the new row counts. It
// returns the covered epoch E: the store epoch read before any brick was
// visited. Epoch-exactness argument: an append stamped with epoch ≤ E
// performed its atomic draw before our Epoch() load, inside the brick's
// append critical section — so acquiring that brick's mutex afterwards (as
// the visit does) observes its rows. An append the visit misses therefore
// drew an epoch > E. After VisitSince returns, "every row with epoch ≤ E
// sits below some mark" holds; rows above the marks (including any the
// visit happened to catch early) are exactly the delta a hybrid scan must
// read from raw bricks.
//
// fn receives each brick's full materialized batch plus the start row to
// fold from; the column views are valid only for the duration of the call.
// Bricks whose row count has not passed their mark are skipped without
// decoding. If a brick-replacing import lands during the pass the marks
// (and anything fn folded) are void: VisitSince returns
// ErrGenerationChanged and the caller must reset and rebuild.
func (s *Store) VisitSince(marks map[uint64]int, fn func(id uint64, dims [][]uint32, metrics [][]float64, start, rows int) error) (uint64, error) {
	gen := s.gen.Load()
	epoch := s.Epoch()
	for _, e := range s.snapshotBricks() {
		mark := marks[e.id]
		if e.b.Rows() <= mark {
			continue
		}
		err := e.b.visit(func(dims [][]uint32, metrics [][]float64, rows int) error {
			if rows <= mark {
				return nil
			}
			if err := fn(e.id, dims, metrics, mark, rows); err != nil {
				return err
			}
			marks[e.id] = rows
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	if s.gen.Load() != gen {
		return 0, ErrGenerationChanged
	}
	return epoch, nil
}

// ScanTask is one brick's worth of scan work — the morsel unit of
// parallel query execution. Tasks over distinct bricks are independent
// and safe to run concurrently; heat and decompression accounting happen
// when the task is visited, exactly as under Store.Scan.
type ScanTask struct {
	store *Store
	brick *Brick
	// BrickID identifies the brick within the partitioned space.
	BrickID uint64
	// Bounds are the brick's inclusive per-dimension value ranges; every
	// row in the brick falls inside them, which lets kernels size dense
	// per-brick accumulators.
	Bounds [][2]uint32
	// Full reports that the scan filter fully covers the brick's bounds,
	// so per-row filter checks can be skipped.
	Full bool
}

// Rows returns the task's row count.
func (t *ScanTask) Rows() int { return t.brick.Rows() }

// Compressed reports whether visiting the task will pay a transient
// decompression.
func (t *ScanTask) Compressed() bool { return t.brick.IsCompressed() }

// Epoch returns the brick's current ingest epoch. It is advisory when read
// outside a visit (an ingest may land right after); VisitBatchEpoch returns
// the exact epoch the visited data belongs to.
func (t *ScanTask) Epoch() uint64 { return t.brick.Epoch() }

// Touch adds one unit of query heat to the brick without visiting it —
// cache hits call it so reuse keeps a brick exactly as hot as a scan would.
func (t *ScanTask) Touch() { t.brick.Touch(1) }

// Visit streams the brick's fully materialized columnar batch to fn,
// adding heat and counting decompressions/SSD reads on the store. The
// column slices are valid only for the duration of the call.
func (t *ScanTask) Visit(fn func(dims [][]uint32, metrics [][]float64, rows int) error) error {
	return t.VisitBatch(nil, func(b *Batch) error {
		return fn(b.Dims, b.Metrics, b.Rows)
	})
}

// VisitBatch streams the brick's columnar batch to fn, decoding only the
// columns the projection references (nil materializes everything) into
// pooled scratch buffers, adding heat and counting decompressions/SSD
// reads on the store. The batch and its views are valid only for the
// duration of the call.
func (t *ScanTask) VisitBatch(proj *Projection, fn func(*Batch) error) error {
	_, err := t.VisitBatchEpoch(proj, fn)
	return err
}

// VisitBatchEpoch is VisitBatch plus exact epoch observation: the returned
// epoch is read inside the same brick critical section as the data, so the
// batch fn saw belongs to precisely that epoch — an ingest racing with the
// visit lands either wholly before it (and is in the batch) or wholly
// after (and has already bumped past the returned epoch). Decompression /
// SSD-read accounting counts only visits that actually paid a decode, so
// decoded-cache hits do not inflate the cost counters.
func (t *ScanTask) VisitBatchEpoch(proj *Projection, fn func(*Batch) error) (uint64, error) {
	t.brick.Touch(1)
	epoch, decoded, err := t.brick.visitBatchEpoch(proj, fn)
	if decoded {
		t.store.mu.Lock()
		t.store.decompressions++
		if t.brick.IsEvicted() {
			t.store.ssdReads++
		}
		t.store.mu.Unlock()
	}
	return epoch, err
}

// PruneEncoded inspects the brick's encoded blob header and reports whether
// the filter provably matches no row — FOR base/width and dictionary
// min/max bounds — without decoding any column. The returned epoch belongs
// to the inspected data (read in the same critical section), so cache
// entries keyed on it stay exact under racing ingest. Raw and evicted
// bricks return false: there is no resident blob to inspect without paying
// a decode or I/O.
func (t *ScanTask) PruneEncoded(f *Filter) (bool, uint64) {
	b := t.brick
	b.mu.Lock()
	data := b.encoded
	rows := b.rows
	epoch := b.epoch
	b.mu.Unlock()
	if data == nil {
		return false, 0
	}
	if !blobBoundsPrune(data, rows, len(t.store.schema.Dimensions), f) {
		return false, 0
	}
	// The query touched (and answered from) this brick; heat accrues just
	// as a real visit would.
	t.brick.Touch(1)
	return true, epoch
}

// ScanPlan is a stable snapshot of the bricks a filtered scan must visit,
// with index-free pruning already applied.
type ScanPlan struct {
	// Tasks are the surviving bricks in ascending brick-id order.
	Tasks []ScanTask
	// Pruned counts bricks skipped because their bounds do not intersect
	// the filter.
	Pruned int
}

// PlanScan snapshots the store and prunes bricks whose bounds do not
// intersect the filter (the index-free pruning Granular Partitioning
// provides), returning one task per surviving brick. Callers may execute
// the tasks in any order, including concurrently.
func (s *Store) PlanScan(f *Filter) (*ScanPlan, error) {
	entries := s.snapshotBricks()
	plan := &ScanPlan{Tasks: make([]ScanTask, 0, len(entries))}
	for _, e := range entries {
		bounds, err := s.schema.BrickBounds(e.id)
		if err != nil {
			return nil, err
		}
		if !f.overlaps(bounds) {
			plan.Pruned++
			continue
		}
		plan.Tasks = append(plan.Tasks, ScanTask{
			store:   s,
			brick:   e.b,
			BrickID: e.id,
			Bounds:  bounds,
			Full:    f.covers(bounds),
		})
	}
	return plan, nil
}

// Scan streams matching rows to visit. Bricks whose bounds do not
// intersect the filter are pruned without being touched (the index-free
// pruning Granular Partitioning provides); visited bricks gain heat.
func (s *Store) Scan(f *Filter, visit func(dims []uint32, metrics []float64) error) error {
	plan, err := s.PlanScan(f)
	if err != nil {
		return err
	}
	rowDims := make([]uint32, len(s.schema.Dimensions))
	rowMetrics := make([]float64, len(s.schema.Metrics))
	for i := range plan.Tasks {
		t := &plan.Tasks[i]
		err := t.Visit(func(dims [][]uint32, metrics [][]float64, rows int) error {
			for r := 0; r < rows; r++ {
				if !t.Full && !f.MatchesAt(dims, r) {
					continue
				}
				for i := range rowDims {
					rowDims[i] = dims[i][r]
				}
				for i := range rowMetrics {
					rowMetrics[i] = metrics[i][r]
				}
				if err := visit(rowDims, rowMetrics); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Decompressions returns how many scans had to transiently decode a
// compressed brick.
func (s *Store) Decompressions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decompressions
}

// MemoryBytes returns the store's resident footprint (compressed bricks at
// compressed size).
func (s *Store) MemoryBytes() int64 {
	var sum int64
	for _, e := range s.snapshotBricks() {
		sum += e.b.MemoryBytes(s.schema)
	}
	return sum
}

// UncompressedBytes returns the footprint if everything were decompressed —
// Cubrick's gen-2 load-balancing metric (§IV-F2).
func (s *Store) UncompressedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows * s.schema.RowBytes()
}

// CompressedBrickCount returns how many bricks are currently compressed.
func (s *Store) CompressedBrickCount() int {
	n := 0
	for _, e := range s.snapshotBricks() {
		if e.b.IsCompressed() {
			n++
		}
	}
	return n
}

// DecayHotness multiplies every brick's hotness by factor; the memory
// monitor calls it periodically so unused bricks cool down (§IV-F2).
func (s *Store) DecayHotness(factor float64) {
	for _, e := range s.snapshotBricks() {
		e.b.Decay(factor)
	}
}

// HotnessSnapshot returns each brick's (hotness, compressed) pair, for the
// hot/cold distribution of Fig 4e.
func (s *Store) HotnessSnapshot() []BrickHeat {
	entries := s.snapshotBricks()
	out := make([]BrickHeat, 0, len(entries))
	for _, e := range entries {
		out = append(out, BrickHeat{
			BrickID:    e.id,
			Hotness:    e.b.Hotness(),
			Compressed: e.b.IsCompressed(),
			Evicted:    e.b.IsEvicted(),
			Rows:       e.b.Rows(),
		})
	}
	return out
}

// BrickHeat is one brick's heat sample.
type BrickHeat struct {
	BrickID    uint64
	Hotness    float64
	Compressed bool
	Evicted    bool
	Rows       int
}

// EnsureBudget is the memory monitor (§IV-F2): while the resident
// footprint exceeds budget it compresses bricks coldest-first; if there is
// surplus (footprint below lowWater × budget) it decompresses bricks
// hottest-first until the surplus is consumed. It returns how many bricks
// were (de)compressed.
func (s *Store) EnsureBudget(budget int64, lowWater float64) (compressed, decompressed int, err error) {
	entries := s.snapshotBricks()
	type heatEntry struct {
		b    *Brick
		heat float64
	}
	var cold, hot []heatEntry
	for _, e := range entries {
		he := heatEntry{e.b, e.b.Hotness()}
		if e.b.IsCompressed() {
			hot = append(hot, he)
		} else {
			cold = append(cold, he)
		}
	}
	// Coldest first for compression.
	sort.Slice(cold, func(i, j int) bool { return cold[i].heat < cold[j].heat })
	// Hottest first for decompression.
	sort.Slice(hot, func(i, j int) bool { return hot[i].heat > hot[j].heat })

	mem := s.MemoryBytes()
	for _, he := range cold {
		if mem <= budget {
			break
		}
		before := he.b.MemoryBytes(s.schema)
		if err := he.b.Compress(); err != nil {
			return compressed, decompressed, err
		}
		mem += he.b.MemoryBytes(s.schema) - before
		compressed++
	}
	if compressed > 0 {
		return compressed, decompressed, nil
	}
	low := int64(lowWater * float64(budget))
	for _, he := range hot {
		grow := he.b.UncompressedBytes(s.schema) - he.b.MemoryBytes(s.schema)
		if mem+grow > low {
			continue
		}
		if err := he.b.Decompress(); err != nil {
			return compressed, decompressed, err
		}
		mem += grow
		decompressed++
	}
	return compressed, decompressed, nil
}
