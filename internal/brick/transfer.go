package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// exportBlob returns the brick's columnar payload in the version-2
// adaptive format without changing the brick's tier: encoded bricks hand
// out their blob as-is, evicted bricks inflate it transiently, raw bricks
// encode on the fly. Export metrics are not counted as tier transitions.
func (b *Brick) exportBlob() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.encoded != nil {
		return b.encoded, nil
	}
	if b.ssd != nil {
		data, _, err := b.blobLocked(nil)
		return data, err
	}
	return encodeBrickBlob(b.dims, b.metrics, b.rows, nil), nil
}

// Export serializes the full store (schema-less; the receiver must create
// its store with the same schema) for shard migration: on a live migration
// the new server copies the data from the old one, on a failover from a
// healthy replica in another region (§IV-E). Per-brick payloads reuse the
// already-encoded adaptive blobs, so exporting a compressed store does not
// re-encode anything; the outer flate layer keeps the wire format compact.
func (s *Store) Export() ([]byte, error) {
	var raw bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		raw.Write(scratch[:n])
	}
	entries := s.snapshotBricks()
	put(uint64(len(entries)))
	for _, e := range entries {
		put(e.id)
		payload, err := e.b.exportBlob()
		if err != nil {
			return nil, err
		}
		put(uint64(len(payload)))
		raw.Write(payload)
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Import replaces the store's contents with a previously Exported blob.
// Both version-2 (adaptive) and legacy version-1 brick payloads are
// accepted. Bricks arrive uncompressed; the memory monitor will compress
// them later if there is pressure.
func (s *Store) Import(blob []byte) error {
	fr := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return fmt.Errorf("brick: import: %w", err)
	}
	r := bytes.NewReader(raw)
	nBricks, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("brick: import header: %w", err)
	}
	if nBricks > uint64(r.Len()) {
		return fmt.Errorf("brick: import claims %d bricks in %d bytes", nBricks, r.Len())
	}
	bricks := make(map[uint64]*Brick, nBricks)
	var total int64
	for i := uint64(0); i < nBricks; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("brick: import brick id: %w", err)
		}
		plen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("brick: import brick len: %w", err)
		}
		if plen > uint64(r.Len()) {
			return fmt.Errorf("brick: import brick payload claims %d bytes, %d remain", plen, r.Len())
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("brick: import brick payload: %w", err)
		}
		dims, metrics, rows, err := decodeBlobOwned(payload, len(s.schema.Dimensions), len(s.schema.Metrics), -1)
		if err != nil {
			return err
		}
		b := newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
		b.obs = s.obs
		b.epochSrc = &s.epoch
		b.dcache = &s.dcache
		b.dims = dims
		b.metrics = metrics
		b.rows = rows
		// Imported bricks are a fresh data generation: stamp each with a
		// new epoch so caches keyed on the replaced bricks cannot serve
		// for the imported ones.
		b.epoch = s.epoch.Add(1)
		bricks[id] = b
		total += int64(rows)
	}
	s.mu.Lock()
	s.bricks = bricks
	s.rows = total
	s.mu.Unlock()
	return nil
}
