package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Export serializes the full store (schema-less; the receiver must create
// its store with the same schema) for shard migration: on a live migration
// the new server copies the data from the old one, on a failover from a
// healthy replica in another region (§IV-E).
func (s *Store) Export() ([]byte, error) {
	var raw bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		raw.Write(scratch[:n])
	}
	entries := s.snapshotBricks()
	put(uint64(len(entries)))
	for _, e := range entries {
		put(e.id)
		var payload []byte
		err := e.b.visit(func(dims [][]uint32, metrics [][]float64, rows int) error {
			tmp := &Brick{dims: dims, metrics: metrics, rows: rows}
			payload = tmp.encodeColumns()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if payload == nil { // empty brick
			tmp := newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
			payload = tmp.encodeColumns()
		}
		put(uint64(len(payload)))
		raw.Write(payload)
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Import replaces the store's contents with a previously Exported blob.
// Bricks arrive uncompressed; the memory monitor will compress them later
// if there is pressure.
func (s *Store) Import(blob []byte) error {
	fr := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return fmt.Errorf("brick: import: %w", err)
	}
	r := bytes.NewReader(raw)
	nBricks, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("brick: import header: %w", err)
	}
	bricks := make(map[uint64]*Brick, nBricks)
	var total int64
	for i := uint64(0); i < nBricks; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("brick: import brick id: %w", err)
		}
		plen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("brick: import brick len: %w", err)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("brick: import brick payload: %w", err)
		}
		dims, metrics, rows, err := decodeColumns(payload, len(s.schema.Dimensions), len(s.schema.Metrics))
		if err != nil {
			return err
		}
		b := newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
		b.dims = dims
		b.metrics = metrics
		b.rows = rows
		bricks[id] = b
		total += int64(rows)
	}
	s.mu.Lock()
	s.bricks = bricks
	s.rows = total
	s.mu.Unlock()
	return nil
}
