package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// exportBlob returns the brick's columnar payload in the version-2
// adaptive format without changing the brick's tier: encoded bricks hand
// out their blob as-is, evicted bricks inflate it transiently, raw bricks
// encode on the fly. Export metrics are not counted as tier transitions.
func (b *Brick) exportBlob() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.encoded != nil {
		return b.encoded, nil
	}
	if b.ssd != nil {
		data, _, err := b.blobLocked(nil)
		return data, err
	}
	return encodeBrickBlob(b.dims, b.metrics, b.rows, nil), nil
}

// Export serializes the full store (schema-less; the receiver must create
// its store with the same schema) for shard migration: on a live migration
// the new server copies the data from the old one, on a failover from a
// healthy replica in another region (§IV-E). Per-brick payloads reuse the
// already-encoded adaptive blobs, so exporting a compressed store does not
// re-encode anything; the outer flate layer keeps the wire format compact.
func (s *Store) Export() ([]byte, error) {
	var raw bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		raw.Write(scratch[:n])
	}
	entries := s.snapshotBricks()
	put(uint64(len(entries)))
	for _, e := range entries {
		put(e.id)
		payload, err := e.b.exportBlob()
		if err != nil {
			return nil, err
		}
		put(uint64(len(payload)))
		raw.Write(payload)
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// ExportSince serializes only the bricks whose epoch is newer than since,
// in the same wire format as Export. It returns the blob together with the
// epoch the delta covers: every row stamped with an epoch in (since,
// covered] is contained in the blob. The covered epoch is read before the
// brick snapshot, so it is a conservative claim — rows appended between
// the read and the snapshot ship now and again on the next delta, which
// is harmless because import replaces whole bricks by id.
//
// A shard migration ships the full store first (since = 0 is equivalent
// to Export), then loops ExportSince(prevCovered) to tail live ingest
// until the epoch gap closes under the cutover pause.
func (s *Store) ExportSince(since uint64) ([]byte, uint64, error) {
	covered := s.Epoch()
	var raw bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		raw.Write(scratch[:n])
	}
	entries := s.snapshotBricks()
	changed := entries[:0]
	for _, e := range entries {
		if e.b.Epoch() > since {
			changed = append(changed, e)
		}
	}
	put(uint64(len(changed)))
	for _, e := range changed {
		put(e.id)
		payload, err := e.b.exportBlob()
		if err != nil {
			return nil, 0, err
		}
		put(uint64(len(payload)))
		raw.Write(payload)
	}
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return nil, 0, err
	}
	if _, err := w.Write(raw.Bytes()); err != nil {
		return nil, 0, err
	}
	if err := w.Close(); err != nil {
		return nil, 0, err
	}
	return out.Bytes(), covered, nil
}

// decodeTransfer parses an Export/ExportSince blob into per-brick columns.
// All payloads decode before any store state changes, so a truncated or
// forged blob cannot leave a store half-imported.
func (s *Store) decodeTransfer(blob []byte) ([]transferBrick, error) {
	fr := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("brick: import: %w", err)
	}
	r := bytes.NewReader(raw)
	nBricks, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("brick: import header: %w", err)
	}
	if nBricks > uint64(r.Len()) {
		return nil, fmt.Errorf("brick: import claims %d bricks in %d bytes", nBricks, r.Len())
	}
	decoded := make([]transferBrick, 0, nBricks)
	for i := uint64(0); i < nBricks; i++ {
		id, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("brick: import brick id: %w", err)
		}
		plen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("brick: import brick len: %w", err)
		}
		if plen > uint64(r.Len()) {
			return nil, fmt.Errorf("brick: import brick payload claims %d bytes, %d remain", plen, r.Len())
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("brick: import brick payload: %w", err)
		}
		dims, metrics, rows, err := decodeBlobOwned(payload, len(s.schema.Dimensions), len(s.schema.Metrics), -1)
		if err != nil {
			return nil, err
		}
		decoded = append(decoded, transferBrick{id: id, dims: dims, metrics: metrics, rows: rows})
	}
	return decoded, nil
}

type transferBrick struct {
	id      uint64
	dims    [][]uint32
	metrics [][]float64
	rows    int
}

// buildBrick wires a decoded transfer payload into a live brick attached
// to this store's observer, epoch source and dictionary cache. Imported
// bricks are a fresh data generation: each is stamped with a new epoch so
// caches keyed on the replaced bricks cannot serve for the imported ones.
func (s *Store) buildBrick(tb transferBrick) *Brick {
	b := newBrick(len(s.schema.Dimensions), len(s.schema.Metrics))
	b.obs = s.obs
	b.epochSrc = &s.epoch
	b.dcache = &s.dcache
	b.dims = tb.dims
	b.metrics = tb.metrics
	b.rows = tb.rows
	b.epoch = s.epoch.Add(1)
	return b
}

// Import replaces the store's contents with a previously Exported blob.
// Both version-2 (adaptive) and legacy version-1 brick payloads are
// accepted. Bricks arrive uncompressed; the memory monitor will compress
// them later if there is pressure.
func (s *Store) Import(blob []byte) error {
	decoded, err := s.decodeTransfer(blob)
	if err != nil {
		return err
	}
	bricks := make(map[uint64]*Brick, len(decoded))
	var total int64
	for _, tb := range decoded {
		bricks[tb.id] = s.buildBrick(tb)
		total += int64(tb.rows)
	}
	s.mu.Lock()
	s.bricks = bricks
	s.rows = total
	s.mu.Unlock()
	// Imported bricks are a fresh generation: row order and counts bear no
	// relation to the replaced bricks, so watermark-based consumers must
	// rebuild from scratch.
	s.gen.Add(1)
	return nil
}

// ImportBricks merges an Export/ExportSince blob into the store by brick
// id: bricks already present are replaced wholesale, new ids are added,
// ids absent from the blob are untouched. Because each shipped brick
// carries its complete row set, re-applying the same delta is idempotent
// in content — a migration driver that crashed after a partially acked
// import simply re-ships the delta. Returns the number of rows the store
// gained (negative if replaced bricks shrank, which cannot happen for
// append-only ingest but keeps the accounting honest).
func (s *Store) ImportBricks(blob []byte) (int64, error) {
	decoded, err := s.decodeTransfer(blob)
	if err != nil {
		return 0, err
	}
	var delta int64
	s.mu.Lock()
	for _, tb := range decoded {
		if old, ok := s.bricks[tb.id]; ok {
			delta -= int64(old.Rows())
		}
		s.bricks[tb.id] = s.buildBrick(tb)
		delta += int64(tb.rows)
	}
	s.rows += delta
	s.mu.Unlock()
	// Replaced bricks invalidate per-brick row watermarks (a replacement
	// carries the brick's whole row set in arbitrary order relative to the
	// replaced one), so this counts as a new generation.
	s.gen.Add(1)
	return delta, nil
}

// AdvanceEpochTo raises the store's epoch counter to at least e. A
// migration target calls this with the source's covered epoch after each
// delta import so the target's epochs continue where the source's left
// off — coordinators compare epochs across the ownership flip, and a
// target that restarted from zero would look staler than cached results
// pinned to the source's higher epochs.
func (s *Store) AdvanceEpochTo(e uint64) {
	for {
		cur := s.epoch.Load()
		if cur >= e || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}
