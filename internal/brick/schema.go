// Package brick implements Cubrick's storage internals: data is
// range-partitioned on every dimension column ("Granular Partitioning",
// §IV), forming fixed-size cells called bricks. Each brick stores its rows
// columnar and unordered, carries a hotness counter that decays over time,
// and can be transparently compressed; a memory monitor compresses the
// coldest bricks under memory pressure and decompresses the hottest ones
// under surplus — the paper's adaptive compression (§IV-F2).
package brick

import (
	"errors"
	"fmt"
)

// Dimension describes one dimension column. Values are dictionary-encoded
// or otherwise normalized to uint32 by the caller; the dimension's value
// domain [0, Max) is range-partitioned into Buckets equal ranges, and the
// per-dimension bucket indexes jointly identify a brick.
type Dimension struct {
	Name string
	// Max is the exclusive upper bound of the value domain.
	Max uint32
	// Buckets is how many ranges the domain splits into (≥1).
	Buckets uint32
}

// bucketWidth returns the value width of each range.
func (d Dimension) bucketWidth() uint32 {
	w := d.Max / d.Buckets
	if d.Max%d.Buckets != 0 {
		w++
	}
	if w == 0 {
		w = 1
	}
	return w
}

// bucketOf returns the bucket index for a value.
func (d Dimension) bucketOf(v uint32) uint32 {
	b := v / d.bucketWidth()
	if b >= d.Buckets {
		b = d.Buckets - 1
	}
	return b
}

// Metric describes one metric (measure) column, stored as float64 and
// aggregated at query time.
type Metric struct {
	Name string
}

// Schema is the dimensional schema of one table: an ordered list of
// dimensions and metrics.
type Schema struct {
	Dimensions []Dimension
	Metrics    []Metric
}

// Validate checks structural invariants.
func (s Schema) Validate() error {
	if len(s.Dimensions) == 0 {
		return errors.New("brick: schema needs at least one dimension")
	}
	seen := make(map[string]bool)
	var totalBricks uint64 = 1
	for _, d := range s.Dimensions {
		if d.Name == "" {
			return errors.New("brick: empty dimension name")
		}
		if seen[d.Name] {
			return fmt.Errorf("brick: duplicate column %q", d.Name)
		}
		seen[d.Name] = true
		if d.Max == 0 || d.Buckets == 0 {
			return fmt.Errorf("brick: dimension %q needs Max>0 and Buckets>0", d.Name)
		}
		if d.Buckets > d.Max {
			return fmt.Errorf("brick: dimension %q has more buckets than values", d.Name)
		}
		totalBricks *= uint64(d.Buckets)
		if totalBricks > 1<<40 {
			return errors.New("brick: brick space too large")
		}
	}
	for _, m := range s.Metrics {
		if m.Name == "" {
			return errors.New("brick: empty metric name")
		}
		if seen[m.Name] {
			return fmt.Errorf("brick: duplicate column %q", m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// DimIndex returns the position of a dimension by name, or -1.
func (s Schema) DimIndex(name string) int {
	for i, d := range s.Dimensions {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// MetricIndex returns the position of a metric by name, or -1.
func (s Schema) MetricIndex(name string) int {
	for i, m := range s.Metrics {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// BrickID computes the brick a row belongs to from its dimension values:
// the mixed-radix composition of per-dimension bucket indexes. This is the
// O(1), index-free lookup Granular Partitioning provides.
func (s Schema) BrickID(dims []uint32) (uint64, error) {
	if len(dims) != len(s.Dimensions) {
		return 0, fmt.Errorf("brick: row has %d dims, schema has %d", len(dims), len(s.Dimensions))
	}
	var id uint64
	for i, d := range s.Dimensions {
		if dims[i] >= d.Max {
			return 0, fmt.Errorf("brick: value %d out of domain [0,%d) for %q", dims[i], d.Max, d.Name)
		}
		id = id*uint64(d.Buckets) + uint64(d.bucketOf(dims[i]))
	}
	return id, nil
}

// BrickBounds returns, for each dimension, the inclusive value range
// [lo, hi] covered by the given brick id — used for brick pruning at scan
// time.
func (s Schema) BrickBounds(id uint64) ([][2]uint32, error) {
	bounds := make([][2]uint32, len(s.Dimensions))
	for i := len(s.Dimensions) - 1; i >= 0; i-- {
		d := s.Dimensions[i]
		b := uint32(id % uint64(d.Buckets))
		id /= uint64(d.Buckets)
		w := d.bucketWidth()
		lo := b * w
		hi := lo + w - 1
		if hi >= d.Max {
			hi = d.Max - 1
		}
		bounds[i] = [2]uint32{lo, hi}
	}
	if id != 0 {
		return nil, errors.New("brick: brick id out of range")
	}
	return bounds, nil
}

// RowBytes is the in-memory cost of one uncompressed row under this schema.
func (s Schema) RowBytes() int64 {
	return int64(4*len(s.Dimensions) + 8*len(s.Metrics))
}
