package brick

import (
	"testing"
)

// The fuzz targets mirror the forged-count hardening of the wire decoders:
// whatever bytes arrive, a column decoder may return an error but must
// never panic, and its allocations are bounded by the declared row count.

// FuzzDecodeBrick drives the whole-blob decoder (both the legacy v1 and the
// adaptive v2 format) with untrusted input, as the Import path does.
func FuzzDecodeBrick(f *testing.F) {
	dims := [][]uint32{{1, 2, 3, 3}, {5, 5, 5, 5}, {9, 8, 7, 6}}
	mets := [][]float64{{1, 2, 3, 4}, {0.5, 0.5, 0.5, 0.5}}
	f.Add(encodeBrickBlob(dims, mets, 4, nil))
	f.Add(encodeColumnsV1(dims, mets, 4))
	f.Add([]byte{blobVersionByte0, blobVersionByte1, 4})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		gd, gm, rows, err := decodeBlobOwned(data, 3, 2, -1)
		if err != nil {
			return
		}
		if rows < 0 || rows > maxDecodeRows {
			t.Fatalf("accepted blob with %d rows", rows)
		}
		for _, col := range gd {
			if len(col) != rows {
				t.Fatalf("dim column length %d for %d rows", len(col), rows)
			}
		}
		for _, col := range gm {
			if len(col) != rows {
				t.Fatalf("metric column length %d for %d rows", len(col), rows)
			}
		}
		// A blob the decoder accepted must re-encode and decode to the same
		// data: decode is a left inverse of encode on its accepted set.
		re := encodeBrickBlob(gd, gm, rows, nil)
		rd, rm, rrows, err := decodeBlobOwned(re, 3, 2, rows)
		if err != nil || rrows != rows {
			t.Fatalf("re-encode roundtrip failed: %v (rows %d vs %d)", err, rrows, rows)
		}
		for d := range gd {
			for i := range gd[d] {
				if rd[d][i] != gd[d][i] {
					t.Fatalf("dim %d row %d changed across roundtrip", d, i)
				}
			}
		}
		for m := range gm {
			for i := range gm[m] {
				if floatBits(rm[m][i]) != floatBits(gm[m][i]) {
					t.Fatalf("metric %d row %d changed across roundtrip", m, i)
				}
			}
		}
	})
}

// FuzzDecodeDimColumn exercises each length-prefixed dimension decoder on
// raw payload bytes with an attacker-chosen row count.
func FuzzDecodeDimColumn(f *testing.F) {
	f.Add(byte(dimEncRLE), uint16(4), []byte{2, 1, 2, 7, 2})
	f.Add(byte(dimEncDelta), uint16(3), []byte{2, 1, 1})
	f.Add(byte(dimEncDict), uint16(4), []byte{2, 5, 3, 1, 0b0110})
	f.Fuzz(func(t *testing.T, enc byte, rows16 uint16, payload []byte) {
		rows := int(rows16)
		switch enc % 3 {
		case 0:
			runs, err := decodeDimRLE(payload, rows, nil)
			if err == nil {
				total := 0
				for _, r := range runs {
					if r.Length <= 0 {
						t.Fatal("accepted non-positive run length")
					}
					total += int(r.Length)
				}
				if total != rows {
					t.Fatalf("runs cover %d rows, declared %d", total, rows)
				}
			}
		case 1:
			out := make([]uint32, rows)
			_ = decodeDimDelta(payload, rows, out)
		default:
			dict, codes, err := decodeDimDict(payload, rows, nil)
			if err == nil {
				if len(codes) != rows {
					t.Fatalf("codes length %d for %d rows", len(codes), rows)
				}
				for _, c := range codes {
					if int(c) >= len(dict) {
						t.Fatal("accepted out-of-range dictionary code")
					}
				}
			}
		}
	})
}

// FuzzDecodeMetricColumn exercises the XOR and dictionary metric decoders,
// whose control bytes and counts drive variable-length reads.
func FuzzDecodeMetricColumn(f *testing.F) {
	// Two rows of 1.0: ctrl 0x06 (lz=0, tz=6) + 2 significant bytes, then
	// ctrl 0x80 (unchanged value).
	f.Add(byte(0), uint16(2), []byte{0x06, 0xF0, 0x3F, 0x80})
	f.Add(byte(0), uint16(1), []byte{0x80})
	// Two-entry dictionary {0, 1.0}, 1-bit codes 0b10 → rows {0, 1.0}.
	f.Add(byte(1), uint16(2),
		[]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xF0, 0x3F, 1, 0b10})
	f.Fuzz(func(t *testing.T, sel byte, rows16 uint16, payload []byte) {
		rows := int(rows16)
		out := make([]float64, rows)
		if sel%2 == 0 {
			_ = decodeMetricXOR(payload, rows, out)
		} else {
			_ = decodeMetricDict(payload, rows, out)
		}
	})
}
