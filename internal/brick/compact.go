package brick

import (
	"sync"
	"time"
)

// Background compaction (§IV-F2): instead of the all-or-nothing Compress
// sweep, a compaction pass walks the hotness snapshot and moves each brick
// one rung along the tier ladder as it cools or reheats:
//
//	raw  ──cool──▶  encoded  ──cool──▶  evicted (flate + SSD)
//	raw  ◀──hot──   encoded  ◀──hot──   evicted
//
// Moves are one rung per pass in both directions, so a brick's tier tracks
// its temperature gradually rather than thrashing end to end.

// CompactionConfig holds the hotness thresholds of the tier ladder. The
// zero value disables every transition.
type CompactionConfig struct {
	// EncodeBelow: a raw brick colder than this is encoded.
	EncodeBelow float64
	// EvictBelow: an encoded brick colder than this is evicted to SSD.
	EvictBelow float64
	// PromoteAbove: a compressed brick hotter than this climbs one rung
	// (evicted→encoded, encoded→raw). Zero disables promotion. Keep it
	// above EncodeBelow or bricks near the boundary will flap.
	PromoteAbove float64
}

// CompactionStats counts the tier transitions one pass performed.
type CompactionStats struct {
	Encoded  int
	Evicted  int
	Promoted int
}

// Add accumulates another pass's counts.
func (c *CompactionStats) Add(o CompactionStats) {
	c.Encoded += o.Encoded
	c.Evicted += o.Evicted
	c.Promoted += o.Promoted
}

// CompactOnce runs one compaction pass over the store. Promotion is
// checked first so a brick that reheated since the last pass climbs before
// the cooling rules see it.
func (s *Store) CompactOnce(cfg CompactionConfig) (CompactionStats, error) {
	var st CompactionStats
	for _, e := range s.snapshotBricks() {
		b := e.b
		h := b.Hotness()
		switch {
		case cfg.PromoteAbove > 0 && h > cfg.PromoteAbove && b.IsEvicted():
			b.Unevict()
			st.Promoted++
		case cfg.PromoteAbove > 0 && h > cfg.PromoteAbove && b.IsCompressed():
			if err := b.Decompress(); err != nil {
				return st, err
			}
			st.Promoted++
		case h < cfg.EvictBelow && b.IsCompressed() && !b.IsEvicted():
			if err := b.Evict(); err != nil {
				return st, err
			}
			st.Evicted++
		case h < cfg.EncodeBelow && !b.IsCompressed():
			if err := b.Compress(); err != nil {
				return st, err
			}
			st.Encoded++
		}
	}
	s.obs.add("brick.compact.encoded", int64(st.Encoded))
	s.obs.add("brick.compact.evicted", int64(st.Evicted))
	s.obs.add("brick.compact.promoted", int64(st.Promoted))
	return st, nil
}

// StartCompactor runs CompactOnce every interval until the returned stop
// function is called. Errors from individual passes are dropped (the next
// pass retries); the stop function is idempotent.
func (s *Store) StartCompactor(interval time.Duration, cfg CompactionConfig) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_, _ = s.CompactOnce(cfg)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
