package brick

import (
	"fmt"
	"sort"
	"testing"
)

func batchSchema() Schema {
	return Schema{
		Dimensions: []Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "app", Max: 20, Buckets: 4},
		},
		Metrics: []Metric{{Name: "value"}, {Name: "weight"}},
	}
}

// scanRows drains a store into sorted row strings for order-insensitive
// comparison (bricks store rows unordered).
func scanRows(t *testing.T, s *Store) []string {
	t.Helper()
	var out []string
	err := s.Scan(nil, func(dims []uint32, metrics []float64) error {
		out = append(out, fmt.Sprint(dims, metrics))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func makeBatch(rows int) (dimCols [][]uint32, metricCols [][]float64) {
	dimCols = [][]uint32{make([]uint32, rows), make([]uint32, rows)}
	metricCols = [][]float64{make([]float64, rows), make([]float64, rows)}
	for r := 0; r < rows; r++ {
		dimCols[0][r] = uint32(r) % 30
		dimCols[1][r] = uint32(r*7) % 20
		metricCols[0][r] = float64(r)
		metricCols[1][r] = float64(r % 5)
	}
	return dimCols, metricCols
}

func TestInsertBatchEqualsInsert(t *testing.T) {
	const rows = 500
	dimCols, metricCols := makeBatch(rows)

	serial, _ := NewStore(batchSchema())
	for r := 0; r < rows; r++ {
		if err := serial.Insert([]uint32{dimCols[0][r], dimCols[1][r]},
			[]float64{metricCols[0][r], metricCols[1][r]}); err != nil {
			t.Fatal(err)
		}
	}
	batched, _ := NewStore(batchSchema())
	if err := batched.InsertBatch(dimCols, metricCols); err != nil {
		t.Fatal(err)
	}

	if serial.Rows() != batched.Rows() {
		t.Fatalf("rows %d vs %d", serial.Rows(), batched.Rows())
	}
	if serial.BrickCount() != batched.BrickCount() {
		t.Fatalf("bricks %d vs %d", serial.BrickCount(), batched.BrickCount())
	}
	a, b := scanRows(t, serial), scanRows(t, batched)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
	// Per-row Insert touches each brick once per row; the batch must carry
	// the same total heat.
	var heatA, heatB float64
	for _, h := range serial.HotnessSnapshot() {
		heatA += h.Hotness
	}
	for _, h := range batched.HotnessSnapshot() {
		heatB += h.Hotness
	}
	if heatA != heatB {
		t.Fatalf("heat %v vs %v", heatA, heatB)
	}
}

func TestInsertBatchRowsEqualsInsert(t *testing.T) {
	const rows = 200
	dimCols, metricCols := makeBatch(rows)
	rowDims := make([][]uint32, rows)
	rowMets := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		rowDims[r] = []uint32{dimCols[0][r], dimCols[1][r]}
		rowMets[r] = []float64{metricCols[0][r], metricCols[1][r]}
	}
	colStore, _ := NewStore(batchSchema())
	if err := colStore.InsertBatch(dimCols, metricCols); err != nil {
		t.Fatal(err)
	}
	rowStore, _ := NewStore(batchSchema())
	if err := rowStore.InsertBatchRows(rowDims, rowMets); err != nil {
		t.Fatal(err)
	}
	a, b := scanRows(t, colStore), scanRows(t, rowStore)
	if len(a) != len(b) {
		t.Fatalf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestInsertBatchAtomic pins the all-or-nothing contract: a batch with one
// out-of-domain row leaves the store untouched, unlike a per-row loop.
func TestInsertBatchAtomic(t *testing.T) {
	s, _ := NewStore(batchSchema())
	dimCols := [][]uint32{{1, 2, 999}, {1, 2, 3}} // third row out of domain
	metricCols := [][]float64{{1, 2, 3}, {0, 0, 0}}
	if err := s.InsertBatch(dimCols, metricCols); err == nil {
		t.Fatal("out-of-domain batch accepted")
	}
	if s.Rows() != 0 || s.BrickCount() != 0 {
		t.Fatalf("failed batch mutated store: %d rows, %d bricks", s.Rows(), s.BrickCount())
	}
}

func TestInsertBatchValidation(t *testing.T) {
	s, _ := NewStore(batchSchema())
	if err := s.InsertBatch([][]uint32{{1}}, [][]float64{{1}, {1}}); err == nil {
		t.Fatal("wrong dim column count accepted")
	}
	if err := s.InsertBatch([][]uint32{{1}, {1}}, [][]float64{{1}}); err == nil {
		t.Fatal("wrong metric column count accepted")
	}
	if err := s.InsertBatch([][]uint32{{1, 2}, {1}}, [][]float64{{1, 2}, {1, 2}}); err == nil {
		t.Fatal("ragged dim columns accepted")
	}
	if err := s.InsertBatch([][]uint32{{1}, {1}}, [][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged metric columns accepted")
	}
	if err := s.InsertBatch([][]uint32{{}, {}}, [][]float64{{}, {}}); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if err := s.InsertBatchRows([][]uint32{{1, 1}}, [][]float64{}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	if err := s.InsertBatchRows([][]uint32{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short dim row accepted")
	}
}

// TestInsertBatchIntoCompressed: batch ingest into a fully compressed
// store must decompress the touched bricks (ingest heats data), exactly
// like per-row Insert.
func TestInsertBatchIntoCompressed(t *testing.T) {
	s, _ := NewStore(batchSchema())
	dimCols, metricCols := makeBatch(300)
	if err := s.InsertBatch(dimCols, metricCols); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.EnsureBudget(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if s.CompressedBrickCount() == 0 {
		t.Fatal("setup: nothing compressed")
	}
	if err := s.InsertBatch(dimCols, metricCols); err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 600 {
		t.Fatalf("rows = %d, want 600", s.Rows())
	}
	if got := len(scanRows(t, s)); got != 600 {
		t.Fatalf("scan found %d rows, want 600", got)
	}
}
