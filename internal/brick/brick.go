package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Brick is one cell of the granularly partitioned space: an unordered,
// columnar batch of rows whose dimension values all fall in the brick's
// per-dimension ranges. Bricks are the unit of hotness tracking and of
// adaptive compression (the paper also calls them "data blocks", Fig 4e).
type Brick struct {
	mu sync.Mutex

	// Uncompressed representation: one column per dimension and metric.
	dims    [][]uint32
	metrics [][]float64
	rows    int

	// Compressed representation; non-nil iff the brick is compressed.
	compressed []byte
	// evicted marks bricks whose compressed payload lives on the SSD
	// tier (§IV-F3): memory footprint zero, reads cost IOPS.
	evicted bool

	// hotness is incremented whenever a query touches the brick and
	// decays stochastically over time (§IV-F2, inspired by LeanStore).
	hotness float64
}

func newBrick(nDims, nMetrics int) *Brick {
	b := &Brick{
		dims:    make([][]uint32, nDims),
		metrics: make([][]float64, nMetrics),
	}
	return b
}

// Rows returns the number of rows stored.
func (b *Brick) Rows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rows
}

// Hotness returns the current hotness counter.
func (b *Brick) Hotness() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hotness
}

// Touch adds heat to the brick; queries call it on every brick they visit.
func (b *Brick) Touch(heat float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hotness += heat
}

// Decay multiplies the hotness counter by factor in [0,1).
func (b *Brick) Decay(factor float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hotness *= factor
}

// IsCompressed reports whether the brick currently holds only its
// compressed representation.
func (b *Brick) IsCompressed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.compressed != nil
}

// UncompressedBytes returns the memory footprint the brick would have if
// fully decompressed — the "decompressed size" Cubrick's second-generation
// load balancing metric reports to SM (§IV-F2).
func (b *Brick) UncompressedBytes(schema Schema) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.rows) * schema.RowBytes()
}

// MemoryBytes returns the brick's current resident footprint: compressed
// size when compressed, raw columns otherwise.
func (b *Brick) MemoryBytes(schema Schema) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.evicted {
		return 0
	}
	if b.compressed != nil {
		return int64(len(b.compressed))
	}
	return int64(b.rows) * schema.RowBytes()
}

// append adds a row; the brick must be uncompressed (the store guarantees
// it by decompressing before ingest).
func (b *Brick) append(dims []uint32, metrics []float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.dims {
		b.dims[i] = append(b.dims[i], dims[i])
	}
	for i := range b.metrics {
		b.metrics[i] = append(b.metrics[i], metrics[i])
	}
	b.rows++
}

// appendColumns adds the rows selected by idx from a column-major batch
// (src[col][row]), taking the brick lock once for the whole batch. The
// brick must be uncompressed (the store guarantees it by decompressing
// before ingest).
func (b *Brick) appendColumns(dimCols [][]uint32, metricCols [][]float64, idx []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.dims {
		col := b.dims[i]
		// Grow once for the whole batch, keeping at least doubling so a
		// sequence of batches stays amortized-linear.
		if need := len(col) + len(idx); cap(col) < need {
			if c := 2 * cap(col); c > need {
				need = c
			}
			grown := make([]uint32, len(col), need)
			copy(grown, col)
			col = grown
		}
		src := dimCols[i]
		for _, r := range idx {
			col = append(col, src[r])
		}
		b.dims[i] = col
	}
	for i := range b.metrics {
		col := b.metrics[i]
		if need := len(col) + len(idx); cap(col) < need {
			if c := 2 * cap(col); c > need {
				need = c
			}
			grown := make([]float64, len(col), need)
			copy(grown, col)
			col = grown
		}
		src := metricCols[i]
		for _, r := range idx {
			col = append(col, src[r])
		}
		b.metrics[i] = col
	}
	b.rows += len(idx)
}

// encodeColumns serializes the columns: row count, then each dimension
// column delta-encoded as varints, then each metric column as raw bits.
func (b *Brick) encodeColumns() []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(uint64(b.rows))
	for _, col := range b.dims {
		for _, v := range col {
			putUvarint(uint64(v))
		}
	}
	var mbits [8]byte
	for _, col := range b.metrics {
		for _, v := range col {
			binary.LittleEndian.PutUint64(mbits[:], floatBits(v))
			buf.Write(mbits[:])
		}
	}
	return buf.Bytes()
}

func decodeColumns(data []byte, nDims, nMetrics int) (dims [][]uint32, metrics [][]float64, rows int, err error) {
	r := bytes.NewReader(data)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("brick: corrupt header: %w", err)
	}
	rows = int(n)
	dims = make([][]uint32, nDims)
	for i := range dims {
		col := make([]uint32, rows)
		for j := range col {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("brick: corrupt dim column: %w", err)
			}
			col[j] = uint32(v)
		}
		dims[i] = col
	}
	metrics = make([][]float64, nMetrics)
	var mbits [8]byte
	for i := range metrics {
		col := make([]float64, rows)
		for j := range col {
			if _, err := io.ReadFull(r, mbits[:]); err != nil {
				return nil, nil, 0, fmt.Errorf("brick: corrupt metric column: %w", err)
			}
			col[j] = floatFromBits(binary.LittleEndian.Uint64(mbits[:]))
		}
		metrics[i] = col
	}
	return dims, metrics, rows, nil
}

// Compress converts the brick to its compressed representation, freeing
// the raw columns. It is a no-op on empty or already-compressed bricks.
func (b *Brick) Compress() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.compressed != nil || b.rows == 0 {
		return nil
	}
	raw := b.encodeColumns()
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	b.compressed = out.Bytes()
	for i := range b.dims {
		b.dims[i] = nil
	}
	for i := range b.metrics {
		b.metrics[i] = nil
	}
	return nil
}

// Decompress restores the raw columns from the compressed representation.
func (b *Brick) Decompress() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.decompressLocked()
}

func (b *Brick) decompressLocked() error {
	if b.compressed == nil {
		return nil
	}
	r := flate.NewReader(bytes.NewReader(b.compressed))
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("brick: decompress: %w", err)
	}
	dims, metrics, rows, err := decodeColumns(raw, len(b.dims), len(b.metrics))
	if err != nil {
		return err
	}
	if rows != b.rows {
		return fmt.Errorf("brick: row count mismatch after decompress: %d != %d", rows, b.rows)
	}
	b.dims = dims
	b.metrics = metrics
	b.compressed = nil
	b.evicted = false
	return nil
}

// visit iterates rows, transparently decoding a compressed brick without
// changing its stored state (queries over cold bricks pay a transient
// decompression, exactly the cost adaptive compression minimizes for hot
// data). The callback receives parallel views valid only for the call.
func (b *Brick) visit(fn func(dims [][]uint32, metrics [][]float64, rows int) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rows == 0 {
		return nil
	}
	if b.compressed == nil {
		return fn(b.dims, b.metrics, b.rows)
	}
	r := flate.NewReader(bytes.NewReader(b.compressed))
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("brick: decompress: %w", err)
	}
	dims, metrics, rows, err := decodeColumns(raw, len(b.dims), len(b.metrics))
	if err != nil {
		return err
	}
	return fn(dims, metrics, rows)
}
