package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Brick is one cell of the granularly partitioned space: an unordered,
// columnar batch of rows whose dimension values all fall in the brick's
// per-dimension ranges. Bricks are the unit of hotness tracking and of
// adaptive compression (the paper also calls them "data blocks", Fig 4e).
//
// A brick lives in exactly one of three tiers:
//
//	raw      — materialized columns, scanned directly (hot)
//	encoded  — adaptive per-column lightweight blob (warm); scans decode
//	           only the referenced columns at bit-unpack speed
//	evicted  — flate(encoded blob) standing in for the SSD tier (cold);
//	           memory footprint zero, reads cost IOPS + inflate
type Brick struct {
	mu sync.Mutex

	// Uncompressed representation: one column per dimension and metric.
	dims    [][]uint32
	metrics [][]float64
	rows    int

	// encoded is the adaptive per-column blob; non-nil iff the brick is in
	// the encoded tier.
	encoded []byte
	// ssd is flate(encoded); non-nil iff the brick is evicted (§IV-F3).
	ssd []byte
	// encLen remembers len(encoded) while evicted, so tier planning can
	// price a promotion without inflating.
	encLen int

	// obs fans encode/decode events into the store's metrics registry;
	// nil-safe, shared by all bricks of a store.
	obs *storeObs

	// hotness is incremented whenever a query touches the brick and
	// decays stochastically over time (§IV-F2, inspired by LeanStore).
	hotness float64

	// epoch is the brick's ingest epoch: the value of the store-wide
	// counter at the brick's most recent row append. It only ever grows,
	// is bumped inside the same critical section as the append (so a
	// reader holding b.mu can never see new rows under an old epoch), and
	// is what cache entries key on for exact invalidation. Tier changes
	// (Compress/Decompress/evict) do not bump it — the data is unchanged.
	epoch uint64
	// epochSrc is the store-wide monotonic counter the epoch is drawn
	// from, shared by every brick of a store; nil for store-less bricks
	// (tests), which then keep epoch 0.
	epochSrc *atomic.Uint64

	// dcache points at the store's decoded-column cache holder; shared by
	// all bricks so late attachment reaches existing bricks. May be nil.
	dcache *dcacheRef

	// uid distinguishes this brick from every other brick in the process
	// (including re-imported bricks of the same id), so decoded-cache keys
	// never collide across brick generations.
	uid uint64
}

// brickUID hands out process-unique brick identities for cache keying.
var brickUID atomic.Uint64

func newBrick(nDims, nMetrics int) *Brick {
	b := &Brick{
		dims:    make([][]uint32, nDims),
		metrics: make([][]float64, nMetrics),
		uid:     brickUID.Add(1),
	}
	return b
}

// bumpEpochLocked advances the brick's ingest epoch from the store-wide
// counter. Caller holds b.mu; every row-append path calls it inside the
// same critical section as the append itself.
func (b *Brick) bumpEpochLocked() {
	if b.epochSrc != nil {
		b.epoch = b.epochSrc.Add(1)
	} else {
		b.epoch++
	}
}

// Epoch returns the brick's current ingest epoch.
func (b *Brick) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Rows returns the number of rows stored.
func (b *Brick) Rows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rows
}

// Hotness returns the current hotness counter.
func (b *Brick) Hotness() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hotness
}

// Touch adds heat to the brick; queries call it on every brick they visit.
func (b *Brick) Touch(heat float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hotness += heat
}

// Decay multiplies the hotness counter by factor in [0,1).
func (b *Brick) Decay(factor float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hotness *= factor
}

// IsCompressed reports whether the brick currently holds only a compressed
// (encoded or evicted) representation.
func (b *Brick) IsCompressed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.encoded != nil || b.ssd != nil
}

// UncompressedBytes returns the memory footprint the brick would have if
// fully decompressed — the "decompressed size" Cubrick's second-generation
// load balancing metric reports to SM (§IV-F2).
func (b *Brick) UncompressedBytes(schema Schema) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.rows) * schema.RowBytes()
}

// MemoryBytes returns the brick's current resident footprint: zero when
// evicted, blob size when encoded, raw columns otherwise.
func (b *Brick) MemoryBytes(schema Schema) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ssd != nil {
		return 0
	}
	if b.encoded != nil {
		return int64(len(b.encoded))
	}
	return int64(b.rows) * schema.RowBytes()
}

// append adds a row; the brick must be uncompressed (the store guarantees
// it by decompressing before ingest).
func (b *Brick) append(dims []uint32, metrics []float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.dims {
		b.dims[i] = append(b.dims[i], dims[i])
	}
	for i := range b.metrics {
		b.metrics[i] = append(b.metrics[i], metrics[i])
	}
	b.rows++
	b.bumpEpochLocked()
}

// appendColumns adds the rows selected by idx from a column-major batch
// (src[col][row]), taking the brick lock once for the whole batch. The
// brick must be uncompressed (the store guarantees it by decompressing
// before ingest).
func (b *Brick) appendColumns(dimCols [][]uint32, metricCols [][]float64, idx []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.dims {
		col := b.dims[i]
		// Grow once for the whole batch, keeping at least doubling so a
		// sequence of batches stays amortized-linear.
		if need := len(col) + len(idx); cap(col) < need {
			if c := 2 * cap(col); c > need {
				need = c
			}
			grown := make([]uint32, len(col), need)
			copy(grown, col)
			col = grown
		}
		src := dimCols[i]
		for _, r := range idx {
			col = append(col, src[r])
		}
		b.dims[i] = col
	}
	for i := range b.metrics {
		col := b.metrics[i]
		if need := len(col) + len(idx); cap(col) < need {
			if c := 2 * cap(col); c > need {
				need = c
			}
			grown := make([]float64, len(col), need)
			copy(grown, col)
			col = grown
		}
		src := metricCols[i]
		for _, r := range idx {
			col = append(col, src[r])
		}
		b.metrics[i] = col
	}
	b.rows += len(idx)
	b.bumpEpochLocked()
}

// encodeColumnsV1 serializes the columns in the legacy (version-1) format:
// row count, then each dimension column as plain varints, then each metric
// column as raw bits. Kept as the flate-baseline reference and so tests can
// manufacture old payloads; live encoding uses the version-2 adaptive blob.
func encodeColumnsV1(dims [][]uint32, metrics [][]float64, rows int) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(uint64(rows))
	for _, col := range dims {
		for _, v := range col {
			putUvarint(uint64(v))
		}
	}
	var mbits [8]byte
	for _, col := range metrics {
		for _, v := range col {
			binary.LittleEndian.PutUint64(mbits[:], floatBits(v))
			buf.Write(mbits[:])
		}
	}
	return buf.Bytes()
}

func decodeColumns(data []byte, nDims, nMetrics int) (dims [][]uint32, metrics [][]float64, rows int, err error) {
	r := bytes.NewReader(data)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("brick: corrupt header: %w", err)
	}
	if n > maxDecodeRows {
		return nil, nil, 0, fmt.Errorf("brick: blob claims %d rows (max %d)", n, maxDecodeRows)
	}
	rows = int(n)
	// Every row costs at least one varint byte per dim column plus eight
	// bytes per metric column, so a forged count cannot force allocation
	// beyond what the payload itself could hold.
	minBytes := int64(rows) * int64(nDims+8*nMetrics)
	if minBytes > int64(r.Len()) {
		return nil, nil, 0, fmt.Errorf("brick: blob claims %d rows but has %d payload bytes", rows, r.Len())
	}
	dims = make([][]uint32, nDims)
	for i := range dims {
		col := make([]uint32, rows)
		for j := range col {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("brick: corrupt dim column: %w", err)
			}
			col[j] = uint32(v)
		}
		dims[i] = col
	}
	metrics = make([][]float64, nMetrics)
	var mbits [8]byte
	for i := range metrics {
		col := make([]float64, rows)
		for j := range col {
			if _, err := io.ReadFull(r, mbits[:]); err != nil {
				return nil, nil, 0, fmt.Errorf("brick: corrupt metric column: %w", err)
			}
			col[j] = floatFromBits(binary.LittleEndian.Uint64(mbits[:]))
		}
		metrics[i] = col
	}
	return dims, metrics, rows, nil
}

// Compress converts the brick to the encoded tier: every column picks its
// cheapest lightweight encoding and the raw columns are freed. It is a
// no-op on empty or already-compressed bricks.
func (b *Brick) Compress() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.encoded != nil || b.ssd != nil || b.rows == 0 {
		return nil
	}
	before := int64(0)
	for _, col := range b.dims {
		before += int64(4 * len(col))
	}
	for _, col := range b.metrics {
		before += int64(8 * len(col))
	}
	b.encoded = encodeBrickBlob(b.dims, b.metrics, b.rows, b.obs)
	b.obs.add("brick.encode.bytes_before", before)
	b.obs.add("brick.encode.bytes_after", int64(len(b.encoded)))
	for i := range b.dims {
		b.dims[i] = nil
	}
	for i := range b.metrics {
		b.metrics[i] = nil
	}
	return nil
}

// Decompress restores the raw columns from the compressed representation.
func (b *Brick) Decompress() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.decompressLocked()
}

// blobLocked returns the brick's encoded blob, inflating the SSD payload
// if evicted. Caller holds b.mu. fromSSD reports whether an inflate
// happened (so callers can reuse the bytes without re-reading).
func (b *Brick) blobLocked(sc *visitScratch) (data []byte, fromSSD bool, err error) {
	if b.encoded != nil {
		return b.encoded, false, nil
	}
	if b.ssd == nil {
		return nil, false, nil
	}
	fr := flate.NewReader(bytes.NewReader(b.ssd))
	var buf bytes.Buffer
	if sc != nil && sc.inflate != nil {
		buf = *bytes.NewBuffer(sc.inflate[:0])
	} else if b.encLen > 0 {
		buf.Grow(b.encLen)
	}
	if _, err := io.Copy(&buf, fr); err != nil {
		return nil, false, fmt.Errorf("brick: ssd read: %w", err)
	}
	data = buf.Bytes()
	if sc != nil {
		sc.inflate = data
	}
	return data, true, nil
}

func (b *Brick) decompressLocked() error {
	if b.encoded == nil && b.ssd == nil {
		return nil
	}
	data, _, err := b.blobLocked(nil)
	if err != nil {
		return err
	}
	dims, metrics, rows, err := decodeBlobOwned(data, len(b.dims), len(b.metrics), b.rows)
	if err != nil {
		return err
	}
	if rows != b.rows {
		return fmt.Errorf("brick: row count mismatch after decompress: %d != %d", rows, b.rows)
	}
	b.dims = dims
	b.metrics = metrics
	b.encoded = nil
	b.ssd = nil
	b.encLen = 0
	return nil
}

// visit streams the full materialized batch, transparently decoding a
// compressed brick without changing its stored state. The callback views
// are valid only for the call. Kept as the projection-free wrapper around
// visitBatch for row-at-a-time consumers.
func (b *Brick) visit(fn func(dims [][]uint32, metrics [][]float64, rows int) error) error {
	return b.visitBatch(nil, func(batch *Batch) error {
		return fn(batch.Dims, batch.Metrics, batch.Rows)
	})
}

// visitBatch streams the brick's columnar batch to fn, decoding only the
// columns the projection references (a nil projection materializes
// everything) into pooled scratch buffers. Queries over cold bricks pay a
// transient decode — exactly the cost adaptive compression minimizes for
// hot data. The batch and its views are valid only for the call.
func (b *Brick) visitBatch(proj *Projection, fn func(*Batch) error) error {
	_, _, err := b.visitBatchEpoch(proj, fn)
	return err
}

// visitBatchEpoch is visitBatch plus exact epoch observation: the returned
// epoch is read under the same b.mu critical section as the data, so it is
// precisely the ingest state the callback saw — the property worker-side
// caches key on. decoded reports whether a transient column decode was paid
// (false on raw bricks and decoded-cache hits).
func (b *Brick) visitBatchEpoch(proj *Projection, fn func(*Batch) error) (epoch uint64, decoded bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	epoch = b.epoch
	if b.rows == 0 {
		return epoch, false, nil
	}
	if b.encoded == nil && b.ssd == nil {
		batch := Batch{Dims: b.dims, Metrics: b.metrics, Rows: b.rows}
		return epoch, false, fn(&batch)
	}

	// Decoded-column cache: serve an earlier decode of this exact
	// (brick generation, epoch, projection) if one is pinned. The key
	// carries the epoch, so an ingest into the brick simply orphans old
	// entries — they age out of the LRU without any explicit purge.
	dc := b.dcache.load()
	useCache := dc != nil && (proj == nil || !proj.NoCache)
	var cacheKey string
	if useCache {
		cacheKey = dcacheKey(b.uid, epoch, proj)
		if batch, ok := dc.get(cacheKey, b.hotness); ok {
			return epoch, false, fn(batch)
		}
	}

	var sc *visitScratch
	if useCache {
		// The decode is headed for the cache: use owned buffers, not the
		// pool — pooled scratch would be recycled under the cached batch.
		sc = &visitScratch{}
	} else {
		sc = visitPool.Get().(*visitScratch)
		defer visitPool.Put(sc)
	}
	start := time.Now()
	data, _, err := b.blobLocked(sc)
	if err != nil {
		return epoch, false, err
	}
	var batch *Batch
	if isV2Blob(data) {
		batch, err = decodeBlobInto(data, len(b.dims), len(b.metrics), b.rows, proj, sc)
		if err != nil {
			return epoch, false, err
		}
	} else {
		// Legacy v1 payloads (pre-adaptive evictions) have no column
		// boundaries, so projection cannot skip anything.
		dims, metrics, rows, err := decodeColumns(data, len(b.dims), len(b.metrics))
		if err != nil {
			return epoch, false, err
		}
		if rows != b.rows {
			return epoch, false, fmt.Errorf("brick: row count mismatch in blob: %d != %d", rows, b.rows)
		}
		batch = &sc.batch
		batch.Dims = dims
		batch.Metrics = metrics
		batch.DimRuns = resizeNilRuns(batch.DimRuns, len(dims))
		batch.DimCodes = resizeNil(batch.DimCodes, len(dims))
		batch.DimDict = resizeNil(batch.DimDict, len(dims))
		batch.Rows = rows
	}
	b.obs.observeDecode(time.Since(start))
	if useCache {
		// The decode copies values out of the blob bytes, so the batch
		// does not reference sc's inflate buffer; drop it before pinning
		// so a cached evicted-brick batch costs only its decoded columns.
		sc.inflate = nil
		dc.put(cacheKey, batch, b.hotness)
	}
	return epoch, true, fn(batch)
}
