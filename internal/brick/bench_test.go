package brick

import (
	"testing"

	"cubrick/internal/randutil"
)

func benchStore(b *testing.B, rows int) *Store {
	b.Helper()
	s, err := NewStore(testSchema())
	if err != nil {
		b.Fatal(err)
	}
	rnd := randutil.New(1)
	for i := 0; i < rows; i++ {
		if err := s.Insert(
			[]uint32{uint32(rnd.Intn(16)), uint32(rnd.Intn(100)), uint32(rnd.Intn(365))},
			[]float64{rnd.Float64(), rnd.Float64()},
		); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkInsert(b *testing.B) {
	s, _ := NewStore(testSchema())
	rnd := randutil.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(
			[]uint32{uint32(rnd.Intn(16)), uint32(rnd.Intn(100)), uint32(rnd.Intn(365))},
			[]float64{1, 2},
		)
	}
	b.ReportMetric(float64(s.Rows())/float64(b.N), "rows_per_op")
}

// benchBatch builds one column-major batch of n rows over testSchema.
func benchBatch(n int) (dimCols [][]uint32, metricCols [][]float64) {
	rnd := randutil.New(1)
	dimCols = [][]uint32{make([]uint32, n), make([]uint32, n), make([]uint32, n)}
	metricCols = [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		dimCols[0][i] = uint32(rnd.Intn(16))
		dimCols[1][i] = uint32(rnd.Intn(100))
		dimCols[2][i] = uint32(rnd.Intn(365))
		metricCols[0][i], metricCols[1][i] = 1, 2
	}
	return dimCols, metricCols
}

// BenchmarkInsertRowLoop vs BenchmarkInsertBatch: per-row locking vs the
// single-lock batched ingest path over the same 8192-row batch.
func BenchmarkInsertRowLoop(b *testing.B) {
	const n = 8192
	dimCols, metricCols := benchBatch(n)
	s, _ := NewStore(testSchema())
	row := make([]uint32, 3)
	met := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < n; r++ {
			row[0], row[1], row[2] = dimCols[0][r], dimCols[1][r], dimCols[2][r]
			met[0], met[1] = metricCols[0][r], metricCols[1][r]
			if err := s.Insert(row, met); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(n, "rows_per_op")
}

func BenchmarkInsertBatch(b *testing.B) {
	const n = 8192
	dimCols, metricCols := benchBatch(n)
	s, _ := NewStore(testSchema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.InsertBatch(dimCols, metricCols); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n, "rows_per_op")
}

func BenchmarkScanUncompressed(b *testing.B) {
	s := benchStore(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil })
	}
	b.ReportMetric(float64(s.Rows()), "rows")
}

func BenchmarkScanCompressed(b *testing.B) {
	s := benchStore(b, 100000)
	s.EnsureBudget(0, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil })
	}
}

func BenchmarkScanPruned(b *testing.B) {
	s := benchStore(b, 100000)
	f := &Filter{Ranges: map[int][2]uint32{2: {0, 4}}} // one ds bucket
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan(f, func([]uint32, []float64) error { return nil })
	}
}

func BenchmarkCompressDecompressRoundTrip(b *testing.B) {
	s := benchStore(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.EnsureBudget(0, 0.5); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.EnsureBudget(1<<62, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExportImport(b *testing.B) {
	s := benchStore(b, 50000)
	dst, _ := NewStore(testSchema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := s.Export()
		if err != nil {
			b.Fatal(err)
		}
		if err := dst.Import(blob); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(blob)))
	}
}

func BenchmarkBrickID(b *testing.B) {
	schema := testSchema()
	dims := []uint32{7, 42, 123}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schema.BrickID(dims); err != nil {
			b.Fatal(err)
		}
	}
}
