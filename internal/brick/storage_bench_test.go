package brick

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"io"
	"os"
	"testing"
	"time"

	"cubrick/internal/randutil"
)

// benchShape builds one brick's worth of columns in a named shape.
func benchShape(name string, n int, rnd *randutil.Source) (dims [][]uint32, mets [][]float64) {
	d0 := make([]uint32, n)
	d1 := make([]uint32, n)
	d2 := make([]uint32, n)
	m0 := make([]float64, n)
	m1 := make([]float64, n)
	switch name {
	case "lowcard":
		for i := 0; i < n; i++ {
			d0[i] = uint32(rnd.Intn(8)) * 5000 // sparse low-card → dict
			d1[i] = uint32(i / 1000)           // long runs → rle
			d2[i] = 7                          // constant → for0
			m0[i] = 1                          // constant metric
			m1[i] = float64(i % 16)            // xor-friendly
		}
	case "sequential":
		for i := 0; i < n; i++ {
			d0[i] = uint32(i)      // delta
			d1[i] = uint32(i / 4)  // delta/rle
			d2[i] = uint32(i % 32) // narrow FOR
			m0[i] = float64(i) / 4
			m1[i] = float64(i % 16)
		}
	case "random":
		for i := 0; i < n; i++ {
			d0[i] = uint32(rnd.Int63())
			d1[i] = uint32(rnd.Int63())
			d2[i] = uint32(rnd.Int63())
			m0[i] = floatFromBits(uint64(rnd.Int63())<<1 | uint64(rnd.Intn(2)))
			m1[i] = floatFromBits(uint64(rnd.Int63())<<1 | uint64(rnd.Intn(2)))
		}
	}
	return [][]uint32{d0, d1, d2}, [][]float64{m0, m1}
}

// timeDecodes runs decode repeatedly for at least minDur and returns
// decoded rows per second.
func timeDecodes(n int, minDur time.Duration, decode func()) float64 {
	start := time.Now()
	iters := 0
	for time.Since(start) < minDur {
		decode()
		iters++
	}
	return float64(n) * float64(iters) / time.Since(start).Seconds()
}

// TestStorageBench is the bench harness behind scripts/bench.sh: when
// STORAGE_BENCH_OUT is set it measures compression ratio and cold-scan
// decode throughput for the legacy flate-of-varints baseline versus the
// adaptive per-column encoding, across low-cardinality, sequential and
// random data shapes, and writes the results as JSON.
func TestStorageBench(t *testing.T) {
	out := os.Getenv("STORAGE_BENCH_OUT")
	if out == "" {
		t.Skip("set STORAGE_BENCH_OUT to run the storage bench")
	}
	const n = 100_000
	const minDur = 300 * time.Millisecond
	rnd := randutil.New(11)

	type row struct {
		Shape          string  `json:"shape"`
		Rows           int     `json:"rows"`
		RawBytes       int     `json:"raw_bytes"`
		FlateBytes     int     `json:"flate_bytes"`
		AdaptiveBytes  int     `json:"adaptive_bytes"`
		RatioVsFlate   float64 `json:"ratio_vs_flate"`
		FlateRowsPerS  float64 `json:"flate_scan_rows_per_s"`
		AdaptRowsPerS  float64 `json:"adaptive_scan_rows_per_s"`
		ScanSpeedup    float64 `json:"scan_speedup"`
		AdaptEncodings string  `json:"adaptive_dim_encodings"`
	}
	var rows []row
	for _, shape := range []string{"lowcard", "sequential", "random"} {
		dims, mets := benchShape(shape, n, rnd)
		rawBytes := 4*3*n + 8*2*n

		v1 := encodeColumnsV1(dims, mets, n)
		var fbuf bytes.Buffer
		fw, _ := flate.NewWriter(&fbuf, flate.BestSpeed)
		fw.Write(v1)
		fw.Close()
		flated := fbuf.Bytes()
		flateScan := timeDecodes(n, minDur, func() {
			fr := flate.NewReader(bytes.NewReader(flated))
			inflated, err := io.ReadAll(fr)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := decodeColumns(inflated, 3, 2); err != nil {
				t.Fatal(err)
			}
		})

		blob := encodeBrickBlob(dims, mets, n, nil)
		sc := &visitScratch{}
		adaptScan := timeDecodes(n, minDur, func() {
			if _, err := decodeBlobInto(blob, 3, 2, n, nil, sc); err != nil {
				t.Fatal(err)
			}
		})

		encs := ""
		for i, name := range blobDimEncs(t, blob, 3, n) {
			if i > 0 {
				encs += ","
			}
			encs += name
		}
		rows = append(rows, row{
			Shape: shape, Rows: n,
			RawBytes: rawBytes, FlateBytes: len(flated), AdaptiveBytes: len(blob),
			RatioVsFlate:  float64(len(blob)) / float64(len(flated)),
			FlateRowsPerS: flateScan, AdaptRowsPerS: adaptScan,
			ScanSpeedup:    adaptScan / flateScan,
			AdaptEncodings: encs,
		})
	}
	blob, err := json.MarshalIndent(map[string]interface{}{
		"generated": time.Now().UTC().Format(time.RFC3339),
		"rows":      rows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%s: ratio_vs_flate=%.2f scan_speedup=%.1fx (%s)",
			r.Shape, r.RatioVsFlate, r.ScanSpeedup, r.AdaptEncodings)
	}
}
