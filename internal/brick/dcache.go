package brick

import (
	"strconv"
	"sync/atomic"

	"cubrick/internal/metrics"
	"cubrick/internal/scancache"
)

// DecodedCache keeps hot compressed bricks' decoded columns pinned in
// memory so the dict/RLE/Gorilla unpack cost is paid once per (brick
// generation, ingest epoch, projection) instead of on every scan. Entries
// are keyed on the exact epoch observed under the brick lock during the
// decode, so an ingest simply strands the old entry — no purge protocol —
// and eviction is driven by the brick's live hotness (scancache's
// heat-aware LRU), which is the PR-5 ladder deciding residency.
//
// A nil *DecodedCache is valid and never hits.
type DecodedCache struct {
	c *scancache.Cache
}

// NewDecodedCache returns a cache bounded to maxBytes; non-positive
// budgets return nil (caching off).
func NewDecodedCache(maxBytes int64) *DecodedCache {
	c := scancache.New(maxBytes)
	if c == nil {
		return nil
	}
	return &DecodedCache{c: c}
}

// SetMetrics routes hit/miss/evict/bytes instrumentation into reg under
// the cache.decoded.* names.
func (d *DecodedCache) SetMetrics(reg *metrics.Registry) {
	if d == nil {
		return
	}
	d.c.SetMetrics(reg, "cache.decoded")
}

// Stats returns the underlying cache counters.
func (d *DecodedCache) Stats() scancache.Stats {
	if d == nil {
		return scancache.Stats{}
	}
	return d.c.Stats()
}

func (d *DecodedCache) get(key string, heat float64) (*Batch, bool) {
	v, ok := d.c.Get(key, heat)
	if !ok {
		return nil, false
	}
	return v.(*Batch), true
}

func (d *DecodedCache) put(key string, b *Batch, heat float64) {
	d.c.Put(key, b, batchBytes(b), heat)
}

// dcacheKey derives the cache key for one decode: the brick's process-wide
// generation uid (Import creates fresh uids, so replaced bricks can never
// alias), the exact ingest epoch the decode observed, and the projection
// shape (which columns were materialized vs delivered encoded).
func dcacheKey(uid, epoch uint64, proj *Projection) string {
	buf := make([]byte, 0, 48)
	buf = strconv.AppendUint(buf, uid, 10)
	buf = append(buf, ':')
	buf = strconv.AppendUint(buf, epoch, 10)
	buf = append(buf, ':')
	if proj == nil {
		buf = append(buf, '*')
		return string(buf)
	}
	for _, d := range proj.Dims {
		switch d {
		case ColSkip:
			buf = append(buf, 's')
		case ColNeed:
			buf = append(buf, 'n')
		default:
			buf = append(buf, 'g')
		}
	}
	buf = append(buf, '|')
	for _, m := range proj.Metrics {
		if m {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	return string(buf)
}

// batchBytes prices a cached batch: the decoded column views it pins.
func batchBytes(b *Batch) int64 {
	var n int64 = 64
	for _, col := range b.Dims {
		n += int64(4 * len(col))
	}
	for _, col := range b.Metrics {
		n += int64(8 * len(col))
	}
	for _, runs := range b.DimRuns {
		n += int64(8 * len(runs))
	}
	for _, codes := range b.DimCodes {
		n += int64(4 * len(codes))
	}
	for _, dict := range b.DimDict {
		n += int64(4 * len(dict))
	}
	return n
}

// dcacheRef is the nil-safe holder bricks share with their store, so
// attaching a cache after bricks exist still reaches them.
type dcacheRef struct {
	p atomic.Pointer[DecodedCache]
}

func (r *dcacheRef) load() *DecodedCache {
	if r == nil {
		return nil
	}
	return r.p.Load()
}

func (r *dcacheRef) store(dc *DecodedCache) {
	r.p.Store(dc)
}
