package brick

import (
	"testing"
	"time"
)

// compactStore builds a store with one brick per region bucket and a known
// hotness per brick.
func compactStore(t *testing.T, heats []float64) *Store {
	t.Helper()
	s, err := NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := range heats {
		for r := 0; r < 50; r++ {
			s.Insert([]uint32{uint32(4 * i), 0, 0}, []float64{float64(r), 1})
		}
	}
	// Ingest touches bricks; reset and pin each brick's hotness to its
	// configured value, keyed by the region value the brick holds.
	for _, e := range s.snapshotBricks() {
		region := e.b.dims[0][0]
		e.b.Decay(0)
		e.b.Touch(heats[region/4])
	}
	return s
}

func tierCounts(s *Store) (raw, encoded, evicted int) {
	for _, e := range s.snapshotBricks() {
		switch {
		case e.b.IsEvicted():
			evicted++
		case e.b.IsCompressed():
			encoded++
		default:
			raw++
		}
	}
	return
}

// TestCompactionLadderCooling walks a cooling brick down the ladder one
// rung per pass: raw → encoded → evicted, never two rungs at once.
func TestCompactionLadderCooling(t *testing.T) {
	s := compactStore(t, []float64{1, 100}) // brick 0 cold, brick 1 hot
	cfg := CompactionConfig{EncodeBelow: 10, EvictBelow: 10}

	st, err := s.CompactOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Encoded != 1 || st.Evicted != 0 || st.Promoted != 0 {
		t.Fatalf("pass 1: %+v", st)
	}
	raw, enc, ev := tierCounts(s)
	if raw != 1 || enc != 1 || ev != 0 {
		t.Fatalf("after pass 1: raw=%d encoded=%d evicted=%d", raw, enc, ev)
	}

	st, err = s.CompactOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 1 || st.Encoded != 0 {
		t.Fatalf("pass 2: %+v", st)
	}
	raw, enc, ev = tierCounts(s)
	if raw != 1 || enc != 0 || ev != 1 {
		t.Fatalf("after pass 2: raw=%d encoded=%d evicted=%d", raw, enc, ev)
	}

	// Steady state: nothing left to move.
	st, err = s.CompactOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st != (CompactionStats{}) {
		t.Fatalf("steady state moved bricks: %+v", st)
	}
}

// TestCompactionLadderPromotion walks a reheated brick back up, one rung
// per pass, and checks data integrity at the top.
func TestCompactionLadderPromotion(t *testing.T) {
	s := compactStore(t, []float64{1})
	cfg := CompactionConfig{EncodeBelow: 10, EvictBelow: 10}
	s.CompactOnce(cfg)
	s.CompactOnce(cfg)
	if _, _, ev := tierCounts(s); ev != 1 {
		t.Fatal("setup: brick not evicted")
	}

	for _, e := range s.snapshotBricks() {
		e.b.Touch(1000)
	}
	cfg.PromoteAbove = 100
	st, err := s.CompactOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted != 1 {
		t.Fatalf("promotion pass 1: %+v", st)
	}
	if raw, enc, ev := tierCounts(s); raw != 0 || enc != 1 || ev != 0 {
		t.Fatalf("after promotion 1: raw=%d encoded=%d evicted=%d", raw, enc, ev)
	}
	st, err = s.CompactOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promoted != 1 {
		t.Fatalf("promotion pass 2: %+v", st)
	}
	if raw, enc, ev := tierCounts(s); raw != 1 || enc != 0 || ev != 0 {
		t.Fatalf("after promotion 2: raw=%d encoded=%d evicted=%d", raw, enc, ev)
	}

	var sum float64
	var rows int
	s.Scan(nil, func(_ []uint32, m []float64) error {
		sum += m[0]
		rows++
		return nil
	})
	if rows != 50 || sum != 49*50/2 {
		t.Fatalf("data corrupted by ladder: rows=%d sum=%v", rows, sum)
	}
}

// TestCompactionZeroConfigNoop pins the zero value as fully disabled.
func TestCompactionZeroConfigNoop(t *testing.T) {
	s := compactStore(t, []float64{0, 0})
	st, err := s.CompactOnce(CompactionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st != (CompactionStats{}) {
		t.Fatalf("zero config moved bricks: %+v", st)
	}
	if raw, _, _ := tierCounts(s); raw != 2 {
		t.Fatal("zero config changed tiers")
	}
}

// TestStartCompactorSmoke runs the background compactor briefly and checks
// that it performs transitions and that stop is idempotent.
func TestStartCompactorSmoke(t *testing.T) {
	s := compactStore(t, []float64{1, 1})
	stop := s.StartCompactor(time.Millisecond, CompactionConfig{EncodeBelow: 10})
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, enc, _ := tierCounts(s); enc == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compactor made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
