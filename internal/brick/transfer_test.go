package brick

import (
	"bytes"
	"compress/flate"
	"testing"
)

func scanSum(s *Store) float64 {
	var sum float64
	s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil })
	return sum
}

// TestExportSinceDelta exercises the snapshot-then-tail protocol a shard
// migration uses: full ship, more ingest on the source, then a delta that
// must carry exactly the changed bricks and close the gap.
func TestExportSinceDelta(t *testing.T) {
	src, _ := NewStore(testSchema())
	for i := uint32(0); i < 300; i++ {
		src.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{1, 0})
	}
	full, covered, err := src.ExportSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if covered != src.Epoch() {
		t.Fatalf("covered epoch %d, store epoch %d", covered, src.Epoch())
	}

	dst, _ := NewStore(testSchema())
	if _, err := dst.ImportBricks(full); err != nil {
		t.Fatal(err)
	}
	if dst.Rows() != src.Rows() {
		t.Fatalf("snapshot ship: %d rows, want %d", dst.Rows(), src.Rows())
	}

	// Tail: new ingest lands in a handful of bricks; the delta must ship
	// only bricks whose epoch moved past the covered point.
	for i := uint32(0); i < 40; i++ {
		src.Insert([]uint32{i % 4, i % 10, i % 7}, []float64{2, 0})
	}
	delta, covered2, err := src.ExportSince(covered)
	if err != nil {
		t.Fatal(err)
	}
	if covered2 <= covered {
		t.Fatalf("covered epoch did not advance: %d -> %d", covered, covered2)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta (%d bytes) not smaller than full export (%d bytes)", len(delta), len(full))
	}
	if _, err := dst.ImportBricks(delta); err != nil {
		t.Fatal(err)
	}
	if dst.Rows() != src.Rows() {
		t.Fatalf("after catch-up: %d rows, want %d", dst.Rows(), src.Rows())
	}
	if got, want := scanSum(dst), scanSum(src); got != want {
		t.Fatalf("sums differ after catch-up: %v != %v", got, want)
	}

	// Gap closed: a delta since covered2 must be empty of bricks.
	empty, _, err := src.ExportSince(covered2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := transferBrickCount(empty)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("delta after gap closed ships %d bricks", n)
	}
}

// transferBrickCount decodes just the brick-count header of a blob.
func transferBrickCount(blob []byte) (uint64, error) {
	fr := flate.NewReader(bytes.NewReader(blob))
	var head [16]byte
	n, _ := fr.Read(head[:])
	if n == 0 {
		return 0, nil
	}
	count, used := uvarint(head[:n])
	if used <= 0 {
		return 0, nil
	}
	return count, nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i, c := range b {
		v |= uint64(c&0x7f) << (7 * uint(i))
		if c < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// TestImportBricksIdempotent replays the crash-after-partial-ack case: the
// driver re-ships a delta the target already applied. Replace-by-id makes
// the second apply a no-op in content.
func TestImportBricksIdempotent(t *testing.T) {
	src, _ := NewStore(testSchema())
	for i := uint32(0); i < 200; i++ {
		src.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{float64(i), 1})
	}
	blob, _, err := src.ExportSince(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewStore(testSchema())
	for round := 0; round < 3; round++ {
		if _, err := dst.ImportBricks(blob); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if dst.Rows() != src.Rows() {
			t.Fatalf("round %d: %d rows, want %d", round, dst.Rows(), src.Rows())
		}
		if got, want := scanSum(dst), scanSum(src); got != want {
			t.Fatalf("round %d: sums differ: %v != %v", round, got, want)
		}
	}
}

// TestImportBricksMergesDisjoint checks bricks absent from the blob are
// untouched — a delta import must not wipe the snapshot underneath it.
func TestImportBricksMergesDisjoint(t *testing.T) {
	dst, _ := NewStore(testSchema())
	// Resident rows in one brick corner.
	for i := 0; i < 50; i++ {
		dst.Insert([]uint32{0, 0, 0}, []float64{1, 0})
	}
	resident := dst.Rows()

	other, _ := NewStore(testSchema())
	for i := 0; i < 30; i++ {
		other.Insert([]uint32{15, 99, 364}, []float64{1, 0})
	}
	blob, _, err := other.ExportSince(0)
	if err != nil {
		t.Fatal(err)
	}
	gained, err := dst.ImportBricks(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gained != other.Rows() {
		t.Fatalf("gained %d rows, want %d", gained, other.Rows())
	}
	if dst.Rows() != resident+other.Rows() {
		t.Fatalf("rows = %d, want %d", dst.Rows(), resident+other.Rows())
	}
}

// TestImportBricksAtomicOnGarbage: a blob that fails to decode must leave
// the store untouched, even if earlier bricks in the blob were valid.
func TestImportBricksAtomicOnGarbage(t *testing.T) {
	src, _ := NewStore(testSchema())
	for i := uint32(0); i < 100; i++ {
		src.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{1, 0})
	}
	good, _, _ := src.ExportSince(0)
	// Corrupt the tail of the decompressed stream by truncating the blob.
	bad := good[:len(good)/2]

	dst, _ := NewStore(testSchema())
	dst.Insert([]uint32{1, 1, 1}, []float64{7, 0})
	before := dst.Rows()
	if _, err := dst.ImportBricks(bad); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if dst.Rows() != before {
		t.Fatalf("failed import changed rows: %d -> %d", before, dst.Rows())
	}
	if got := scanSum(dst); got != 7 {
		t.Fatalf("failed import changed data: sum = %v", got)
	}
}

// TestAdvanceEpochTo: the migration target continues the source's epoch
// line; advancing never lowers the counter and later ingest moves past it.
func TestAdvanceEpochTo(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{1, 0})
	low := s.Epoch()
	s.AdvanceEpochTo(low + 100)
	if got := s.Epoch(); got != low+100 {
		t.Fatalf("epoch = %d, want %d", got, low+100)
	}
	s.AdvanceEpochTo(5) // lower: must be a no-op
	if got := s.Epoch(); got != low+100 {
		t.Fatalf("AdvanceEpochTo lowered epoch to %d", got)
	}
	s.Insert([]uint32{0, 0, 0}, []float64{1, 0})
	if got := s.Epoch(); got <= low+100 {
		t.Fatalf("ingest after advance did not move epoch: %d", got)
	}
}
