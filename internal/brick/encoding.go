package brick

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cubrick/internal/metrics"
)

// Adaptive per-column brick encodings (§IV-F2). A compressed brick holds a
// self-describing columnar blob in which every column independently picked
// the cheapest of a menu of lightweight encodings based on its observed
// statistics. Unlike the original monolithic flate blob, the blob decodes
// at bit-unpack speed, supports skipping columns a query does not
// reference, and exposes run/dictionary structure to the execution engine
// so GROUP BY kernels can aggregate without materializing the column.
//
// Blob layout (version 2; version 1 is the legacy flate-of-varints format
// still accepted on decode):
//
//	0x00 0x02                      version header
//	uvarint rows
//	nDims × dimension column:      1 enc byte, then payload
//	nMetrics × metric column:      1 enc byte, then payload
//
// Dimension encodings:
//
//	raw   (0): rows × uint32 LE (implied length)
//	dict  (1): uvarint payloadLen; uvarint k, sorted distinct values as
//	           first-absolute-then-delta uvarints, 1 code-width byte,
//	           LSB-first bit-packed codes
//	rle   (2): uvarint payloadLen; uvarint runCount, runCount ×
//	           (uvarint value, uvarint runLength ≥ 1); run lengths must
//	           sum to rows
//	for   (3): uvarint base, 1 width byte (0–32), LSB-first bit-packed
//	           (value − base) (implied length)
//	delta (4): uvarint payloadLen; rows × zigzag varint of the difference
//	           from the previous value (first value differenced from 0)
//
// Metric encodings:
//
//	raw   (0): rows × float64 bits LE (implied length)
//	xor   (1): uvarint payloadLen; per value one control byte
//	           (leadingZeroBytes<<4 | trailingZeroBytes of bits XOR
//	           previous bits) followed by the 8−lz−tz significant bytes
//	           LE — the byte-aligned variant of Gorilla's XOR scheme
//	const (2): 8 bytes LE of the single bit pattern every row shares
//	dict  (3): uvarint payloadLen; uvarint k, k × 8-byte bit patterns LE
//	           in first-appearance order, 1 code-width byte, LSB-first
//	           bit-packed codes — low-cardinality metric columns
//
// A legacy (version 1) payload begins with uvarint rows directly; the only
// v1 blob whose first byte is 0x00 is the 1-byte empty-brick payload, so
// `len ≥ 2 && data[0] == 0x00 && data[1] == 0x02` selects v2 unambiguously.

const (
	blobVersionByte0 = 0x00
	blobVersionByte1 = 0x02

	dimEncRaw   = 0
	dimEncDict  = 1
	dimEncRLE   = 2
	dimEncFOR   = 3
	dimEncDelta = 4

	metEncRaw   = 0
	metEncXOR   = 1
	metEncConst = 2
	metEncDict  = 3

	// dictMaxCard caps the dictionary size the chooser considers; beyond it
	// the stats pass stops tracking distincts and dictionary encoding is
	// ruled out.
	dictMaxCard = 4096

	// maxDecodeRows bounds the row count accepted from an untrusted blob
	// (import, fuzz) so a forged header cannot drive allocations; trusted
	// in-store decodes pass the brick's authoritative row count instead.
	maxDecodeRows = 1 << 24
)

// ColRequest says what a scan wants from one dimension column.
type ColRequest uint8

const (
	// ColSkip: the column is not referenced; do not decode it.
	ColSkip ColRequest = iota
	// ColNeed: materialize the column values.
	ColNeed
	// ColGroupEncoded: the caller can consume the column's run or
	// dictionary structure directly; materialize only when the encoding
	// has no such structure (raw/delta/wide FOR).
	ColGroupEncoded
)

// Projection is the set of columns a scan references. A nil *Projection
// materializes everything (the pre-projection behavior).
type Projection struct {
	Dims    []ColRequest
	Metrics []bool
	// NoCache bypasses the decoded-column cache for this scan: neither
	// serving from it nor filling it. Set for cache-bypassed queries.
	NoCache bool
}

func (p *Projection) dim(i int) ColRequest {
	if p == nil || i >= len(p.Dims) {
		return ColNeed
	}
	return p.Dims[i]
}

func (p *Projection) metric(i int) bool {
	if p == nil || i >= len(p.Metrics) {
		return true
	}
	return p.Metrics[i]
}

// Run is one run of a run-length-encoded dimension column.
type Run struct {
	Value  uint32
	Length int32
}

// Batch is one brick's worth of decoded scan input. Slices are views valid
// only for the duration of the visit callback. A skipped column's entry is
// nil. For a ColGroupEncoded dimension, exactly one of three shapes is set:
// Dims[i] (materialized), DimRuns[i] (run view), or DimCodes[i]+DimDict[i]
// (dictionary view: Dims values are DimDict[i][DimCodes[i][r]]).
type Batch struct {
	Dims     [][]uint32
	Metrics  [][]float64
	Rows     int
	DimRuns  [][]Run
	DimCodes [][]uint32
	DimDict  [][]uint32
}

// Runs returns dimension i's run view, or nil when the column was not
// delivered as runs (raw bricks leave DimRuns nil entirely).
func (b *Batch) Runs(i int) []Run {
	if i < len(b.DimRuns) {
		return b.DimRuns[i]
	}
	return nil
}

// Codes returns dimension i's dictionary view (codes, dict), or nils when
// the column was not delivered dictionary-encoded.
func (b *Batch) Codes(i int) (codes, dict []uint32) {
	if i < len(b.DimCodes) {
		return b.DimCodes[i], b.DimDict[i]
	}
	return nil, nil
}

// storeObs fans brick-level encode/decode events into the store's metrics
// registry; all methods are safe on a nil receiver or nil registry, so
// bricks carry the pointer unconditionally.
type storeObs struct {
	reg atomic.Pointer[metrics.Registry]
}

func (o *storeObs) add(name string, delta int64) {
	if o == nil {
		return
	}
	if r := o.reg.Load(); r != nil {
		r.Counter(name).Add(delta)
	}
}

func (o *storeObs) observeDecode(d time.Duration) {
	if o == nil {
		return
	}
	if r := o.reg.Load(); r != nil {
		r.Histogram("brick.decode.latency").Observe(d.Seconds())
	}
}

var dimEncCounterName = [...]string{
	dimEncRaw:   "brick.encode.raw",
	dimEncDict:  "brick.encode.dict",
	dimEncRLE:   "brick.encode.rle",
	dimEncFOR:   "brick.encode.for",
	dimEncDelta: "brick.encode.delta",
}

// ---------------------------------------------------------------------------
// Varint / bit-packing helpers

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// bitsFor returns the number of bits needed to represent v (0 for v == 0).
func bitsFor(v uint32) int { return 32 - bits.LeadingZeros32(v) }

func packedLen(n, width int) int { return (n*width + 7) / 8 }

// appendPacked bit-packs vals at the given width, LSB first.
func appendPacked(dst []byte, vals []uint32, width int) []byte {
	var acc uint64
	nbits := 0
	for _, v := range vals {
		acc |= uint64(v) << nbits
		nbits += width
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackBits reads len(out) width-bit values from data (whose length the
// caller has already verified to be exactly packedLen(len(out), width)).
func unpackBits(data []byte, width int, out []uint32) {
	var acc uint64
	nbits := 0
	pos := 0
	mask := uint64(1)<<width - 1
	for i := range out {
		for nbits < width {
			acc |= uint64(data[pos]) << nbits
			pos++
			nbits += 8
		}
		out[i] = uint32(acc & mask)
		acc >>= width
		nbits -= width
	}
}

// ---------------------------------------------------------------------------
// Encoding: stats pass + chooser + per-column writers

// dimStats is one pass of per-column statistics driving the chooser.
type dimStats struct {
	mn, mx     uint32
	rleBytes   int // exact payload cost of the RLE run list
	runCount   int
	deltaBytes int      // exact payload cost of zigzag deltas
	dict       []uint32 // sorted distinct values, nil if > dictMaxCard
}

func analyzeDim(col []uint32) dimStats {
	st := dimStats{mn: col[0], mx: col[0]}
	distinct := make(map[uint32]struct{}, 16)
	distinct[col[0]] = struct{}{}
	prevDelta := int64(0)
	prev := col[0]
	runLen := 0
	closeRun := func(v uint32, n int) {
		st.runCount++
		st.rleBytes += uvarintLen(uint64(v)) + uvarintLen(uint64(n))
	}
	for _, v := range col {
		if v < st.mn {
			st.mn = v
		}
		if v > st.mx {
			st.mx = v
		}
		st.deltaBytes += uvarintLen(zigzag(int64(v) - prevDelta))
		prevDelta = int64(v)
		if runLen > 0 && v == prev {
			runLen++
		} else {
			if runLen > 0 {
				closeRun(prev, runLen)
			}
			prev, runLen = v, 1
		}
		if distinct != nil {
			if _, ok := distinct[v]; !ok {
				if len(distinct) >= dictMaxCard {
					distinct = nil
				} else {
					distinct[v] = struct{}{}
				}
			}
		}
	}
	closeRun(prev, runLen)
	if distinct != nil {
		st.dict = make([]uint32, 0, len(distinct))
		for v := range distinct {
			st.dict = append(st.dict, v)
		}
		sort.Slice(st.dict, func(i, j int) bool { return st.dict[i] < st.dict[j] })
	}
	return st
}

func dimColumnCosts(col []uint32, st dimStats) (costs [5]int) {
	n := len(col)
	costs[dimEncRaw] = 1 + 4*n
	forWidth := bitsFor(st.mx - st.mn)
	costs[dimEncFOR] = 1 + uvarintLen(uint64(st.mn)) + 1 + packedLen(n, forWidth)
	rlePayload := uvarintLen(uint64(st.runCount)) + st.rleBytes
	costs[dimEncRLE] = 1 + uvarintLen(uint64(rlePayload)) + rlePayload
	costs[dimEncDelta] = 1 + uvarintLen(uint64(st.deltaBytes)) + st.deltaBytes
	if st.dict != nil && len(st.dict) > 0 {
		k := len(st.dict)
		dictBytes := uvarintLen(uint64(st.dict[0]))
		for i := 1; i < k; i++ {
			dictBytes += uvarintLen(uint64(st.dict[i] - st.dict[i-1]))
		}
		cw := bitsFor(uint32(k - 1))
		payload := uvarintLen(uint64(k)) + dictBytes + 1 + packedLen(n, cw)
		costs[dimEncDict] = 1 + uvarintLen(uint64(payload)) + payload
	} else {
		costs[dimEncDict] = -1 // ineligible
	}
	return costs
}

// chooseDimEnc picks the cheapest eligible encoding; ties prefer the
// encodings the execution engine can consume structurally (RLE runs, then
// constant-detecting FOR, then dictionary codes) over opaque ones.
func chooseDimEnc(costs [5]int) byte {
	order := [5]byte{dimEncRLE, dimEncFOR, dimEncDict, dimEncRaw, dimEncDelta}
	best := byte(dimEncRaw)
	bestCost := costs[dimEncRaw]
	for _, e := range order {
		if c := costs[e]; c >= 0 && c < bestCost {
			best, bestCost = e, c
		}
	}
	// Walking the preference order with a strict < means the first encoding
	// achieving the minimum wins ties toward structure.
	for _, e := range order {
		if costs[e] == bestCost {
			return e
		}
	}
	return best
}

func appendDimColumn(dst []byte, col []uint32, obs *storeObs) []byte {
	if len(col) == 0 {
		return append(dst, dimEncRaw)
	}
	st := analyzeDim(col)
	costs := dimColumnCosts(col, st)
	enc := chooseDimEnc(costs)
	obs.add(dimEncCounterName[enc], 1)
	dst = append(dst, enc)
	switch enc {
	case dimEncRaw:
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	case dimEncFOR:
		width := bitsFor(st.mx - st.mn)
		dst = appendUvarint(dst, uint64(st.mn))
		dst = append(dst, byte(width))
		var acc uint64
		nbits := 0
		for _, v := range col {
			acc |= uint64(v-st.mn) << nbits
			nbits += width
			for nbits >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				nbits -= 8
			}
		}
		if nbits > 0 {
			dst = append(dst, byte(acc))
		}
	case dimEncRLE:
		payload := uvarintLen(uint64(st.runCount)) + st.rleBytes
		dst = appendUvarint(dst, uint64(payload))
		dst = appendUvarint(dst, uint64(st.runCount))
		prev := col[0]
		runLen := 1
		for _, v := range col[1:] {
			if v == prev {
				runLen++
				continue
			}
			dst = appendUvarint(dst, uint64(prev))
			dst = appendUvarint(dst, uint64(runLen))
			prev, runLen = v, 1
		}
		dst = appendUvarint(dst, uint64(prev))
		dst = appendUvarint(dst, uint64(runLen))
	case dimEncDelta:
		dst = appendUvarint(dst, uint64(st.deltaBytes))
		prev := int64(0)
		for _, v := range col {
			dst = appendUvarint(dst, zigzag(int64(v)-prev))
			prev = int64(v)
		}
	case dimEncDict:
		k := len(st.dict)
		dictBytes := uvarintLen(uint64(st.dict[0]))
		for i := 1; i < k; i++ {
			dictBytes += uvarintLen(uint64(st.dict[i] - st.dict[i-1]))
		}
		cw := bitsFor(uint32(k - 1))
		payload := uvarintLen(uint64(k)) + dictBytes + 1 + packedLen(len(col), cw)
		dst = appendUvarint(dst, uint64(payload))
		dst = appendUvarint(dst, uint64(k))
		dst = appendUvarint(dst, uint64(st.dict[0]))
		for i := 1; i < k; i++ {
			dst = appendUvarint(dst, uint64(st.dict[i]-st.dict[i-1]))
		}
		dst = append(dst, byte(cw))
		codeOf := make(map[uint32]uint32, k)
		for i, v := range st.dict {
			codeOf[v] = uint32(i)
		}
		var acc uint64
		nbits := 0
		for _, v := range col {
			acc |= uint64(codeOf[v]) << nbits
			nbits += cw
			for nbits >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				nbits -= 8
			}
		}
		if nbits > 0 {
			dst = append(dst, byte(acc))
		}
	}
	return dst
}

func xorControl(x uint64) (lz, tz, s int) {
	if x == 0 {
		return 8, 0, 0
	}
	lz = bits.LeadingZeros64(x) / 8
	tz = bits.TrailingZeros64(x) / 8
	return lz, tz, 8 - lz - tz
}

func xorMetricBytes(col []float64) int {
	prev := uint64(0)
	n := 0
	for _, v := range col {
		b := floatBits(v)
		_, _, s := xorControl(b ^ prev)
		n += 1 + s
		prev = b
	}
	return n
}

func appendMetricColumn(dst []byte, col []float64, obs *storeObs) []byte {
	if len(col) == 0 {
		return append(dst, metEncRaw)
	}
	first := floatBits(col[0])
	constant := true
	for _, v := range col[1:] {
		if floatBits(v) != first {
			constant = false
			break
		}
	}
	// Distinct bit patterns in first-appearance order, for the dictionary.
	codeOf := make(map[uint64]uint32, 16)
	var patterns []uint64
	for _, v := range col {
		b := floatBits(v)
		if _, ok := codeOf[b]; !ok {
			if len(patterns) >= dictMaxCard {
				patterns = nil
				break
			}
			codeOf[b] = uint32(len(patterns))
			patterns = append(patterns, b)
		}
	}
	xorSize := xorMetricBytes(col)
	rawCost := 1 + 8*len(col)
	xorCost := 1 + uvarintLen(uint64(xorSize)) + xorSize
	constCost := rawCost + 1 // ineligible unless constant
	if constant {
		constCost = 1 + 8
	}
	dictCost := rawCost + 1 // ineligible past the cardinality cap
	if patterns != nil {
		k := len(patterns)
		payload := uvarintLen(uint64(k)) + 8*k + 1 + packedLen(len(col), bitsFor(uint32(k-1)))
		dictCost = 1 + uvarintLen(uint64(payload)) + payload
	}
	if constCost <= xorCost && constCost <= rawCost && constCost <= dictCost {
		obs.add("brick.encode.metric.const", 1)
		dst = append(dst, metEncConst)
		return binary.LittleEndian.AppendUint64(dst, first)
	}
	if dictCost <= xorCost && dictCost < rawCost {
		obs.add("brick.encode.metric.dict", 1)
		k := len(patterns)
		cw := bitsFor(uint32(k - 1))
		payload := uvarintLen(uint64(k)) + 8*k + 1 + packedLen(len(col), cw)
		dst = append(dst, metEncDict)
		dst = appendUvarint(dst, uint64(payload))
		dst = appendUvarint(dst, uint64(k))
		for _, p := range patterns {
			dst = binary.LittleEndian.AppendUint64(dst, p)
		}
		dst = append(dst, byte(cw))
		var acc uint64
		nbits := 0
		for _, v := range col {
			acc |= uint64(codeOf[floatBits(v)]) << nbits
			nbits += cw
			for nbits >= 8 {
				dst = append(dst, byte(acc))
				acc >>= 8
				nbits -= 8
			}
		}
		if nbits > 0 {
			dst = append(dst, byte(acc))
		}
		return dst
	}
	if xorCost >= rawCost {
		obs.add("brick.encode.metric.raw", 1)
		dst = append(dst, metEncRaw)
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint64(dst, floatBits(v))
		}
		return dst
	}
	obs.add("brick.encode.metric.xor", 1)
	dst = append(dst, metEncXOR)
	dst = appendUvarint(dst, uint64(xorSize))
	prev := uint64(0)
	for _, v := range col {
		b := floatBits(v)
		x := b ^ prev
		lz, tz, s := xorControl(x)
		dst = append(dst, byte(lz<<4|tz))
		x >>= 8 * tz
		for i := 0; i < s; i++ {
			dst = append(dst, byte(x))
			x >>= 8
		}
		prev = b
	}
	return dst
}

// encodeBrickBlob serializes the columns as a version-2 adaptive blob.
func encodeBrickBlob(dims [][]uint32, mets [][]float64, rows int, obs *storeObs) []byte {
	dst := make([]byte, 0, 16+2*rows*(len(dims)+len(mets)))
	dst = append(dst, blobVersionByte0, blobVersionByte1)
	dst = appendUvarint(dst, uint64(rows))
	for _, col := range dims {
		dst = appendDimColumn(dst, col, obs)
	}
	for _, col := range mets {
		dst = appendMetricColumn(dst, col, obs)
	}
	return dst
}

// isV2Blob reports whether data is a version-2 adaptive blob (vs a legacy
// version-1 varint payload).
func isV2Blob(data []byte) bool {
	return len(data) >= 2 && data[0] == blobVersionByte0 && data[1] == blobVersionByte1
}

// ---------------------------------------------------------------------------
// Decoding

type colReader struct {
	data []byte
	pos  int
}

func (r *colReader) remaining() int { return len(r.data) - r.pos }

func (r *colReader) readByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("brick: truncated blob at offset %d", r.pos)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *colReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("brick: corrupt varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *colReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("brick: truncated blob: need %d bytes at offset %d, have %d", n, r.pos, r.remaining())
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *colReader) skip(n int) error {
	_, err := r.take(n)
	return err
}

func decodeDimRaw(payload []byte, rows int, out []uint32) error {
	if len(payload) != 4*rows {
		return fmt.Errorf("brick: raw dim column has %d bytes, want %d", len(payload), 4*rows)
	}
	for i := 0; i < rows; i++ {
		out[i] = binary.LittleEndian.Uint32(payload[4*i:])
	}
	return nil
}

// decodeDimFOR materializes a frame-of-reference payload (the packed bits
// after base/width, whose length the caller verified).
func decodeDimFOR(packed []byte, base uint32, width, rows int, out []uint32) error {
	if width == 0 {
		for i := 0; i < rows; i++ {
			out[i] = base
		}
		return nil
	}
	unpackBits(packed, width, out)
	for i := 0; i < rows; i++ {
		v := uint64(base) + uint64(out[i])
		if v > 0xFFFFFFFF {
			return fmt.Errorf("brick: FOR value overflows uint32")
		}
		out[i] = uint32(v)
	}
	return nil
}

// decodeDimRLE parses the run list into runs (appended to runs[:0]),
// validating that lengths are ≥ 1 and sum exactly to rows.
func decodeDimRLE(payload []byte, rows int, runs []Run) ([]Run, error) {
	r := colReader{data: payload}
	rc, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	// Each run costs ≥ 2 payload bytes, so runCount is bounded by the data.
	if rc > uint64(len(payload)) || rc > uint64(rows) {
		return nil, fmt.Errorf("brick: RLE run count %d implausible for %d rows, %d bytes", rc, rows, len(payload))
	}
	runs = runs[:0]
	total := 0
	for i := uint64(0); i < rc; i++ {
		v, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if v > 0xFFFFFFFF {
			return nil, fmt.Errorf("brick: RLE value %d overflows uint32", v)
		}
		n, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > uint64(rows-total) {
			return nil, fmt.Errorf("brick: RLE run length %d invalid at row %d of %d", n, total, rows)
		}
		runs = append(runs, Run{Value: uint32(v), Length: int32(n)})
		total += int(n)
	}
	if total != rows {
		return nil, fmt.Errorf("brick: RLE runs cover %d rows, want %d", total, rows)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("brick: RLE column has %d trailing bytes", r.remaining())
	}
	return runs, nil
}

func expandRuns(runs []Run, out []uint32) {
	i := 0
	for _, run := range runs {
		for j := int32(0); j < run.Length; j++ {
			out[i] = run.Value
			i++
		}
	}
}

func decodeDimDelta(payload []byte, rows int, out []uint32) error {
	// Every zigzag varint is ≥ 1 byte, so rows > len(payload) is corrupt.
	if rows > len(payload) {
		return fmt.Errorf("brick: delta column has %d bytes for %d rows", len(payload), rows)
	}
	r := colReader{data: payload}
	prev := int64(0)
	for i := 0; i < rows; i++ {
		u, err := r.readUvarint()
		if err != nil {
			return err
		}
		v := prev + unzigzag(u)
		if v < 0 || v > 0xFFFFFFFF {
			return fmt.Errorf("brick: delta value %d out of uint32 range at row %d", v, i)
		}
		out[i] = uint32(v)
		prev = v
	}
	if r.remaining() != 0 {
		return fmt.Errorf("brick: delta column has %d trailing bytes", r.remaining())
	}
	return nil
}

// decodeDimDict parses a dictionary payload into (dict, codes). codes is
// appended to codes[:0] and every code is validated against the dictionary.
func decodeDimDict(payload []byte, rows int, codes []uint32) (dict []uint32, outCodes []uint32, err error) {
	r := colReader{data: payload}
	k, err := r.readUvarint()
	if err != nil {
		return nil, nil, err
	}
	if k == 0 || k > dictMaxCard || k > uint64(rows) {
		return nil, nil, fmt.Errorf("brick: dictionary size %d invalid for %d rows", k, rows)
	}
	dict = make([]uint32, k)
	first, err := r.readUvarint()
	if err != nil {
		return nil, nil, err
	}
	if first > 0xFFFFFFFF {
		return nil, nil, fmt.Errorf("brick: dictionary value overflows uint32")
	}
	dict[0] = uint32(first)
	for i := 1; i < int(k); i++ {
		d, err := r.readUvarint()
		if err != nil {
			return nil, nil, err
		}
		v := uint64(dict[i-1]) + d
		if d == 0 || v > 0xFFFFFFFF {
			return nil, nil, fmt.Errorf("brick: dictionary not strictly increasing at entry %d", i)
		}
		dict[i] = uint32(v)
	}
	cwb, err := r.readByte()
	if err != nil {
		return nil, nil, err
	}
	cw := int(cwb)
	if cw > 32 {
		return nil, nil, fmt.Errorf("brick: dictionary code width %d", cw)
	}
	packed, err := r.take(packedLen(rows, cw))
	if err != nil {
		return nil, nil, err
	}
	if r.remaining() != 0 {
		return nil, nil, fmt.Errorf("brick: dict column has %d trailing bytes", r.remaining())
	}
	codes = codes[:0]
	if cap(codes) < rows {
		codes = make([]uint32, rows)
	} else {
		codes = codes[:rows]
	}
	if cw == 0 {
		for i := range codes {
			codes[i] = 0
		}
	} else {
		unpackBits(packed, cw, codes)
	}
	for i, c := range codes {
		if uint64(c) >= k {
			return nil, nil, fmt.Errorf("brick: dictionary code %d out of range at row %d", c, i)
		}
	}
	return dict, codes, nil
}

func decodeMetricRaw(payload []byte, rows int, out []float64) error {
	if len(payload) != 8*rows {
		return fmt.Errorf("brick: raw metric column has %d bytes, want %d", len(payload), 8*rows)
	}
	for i := 0; i < rows; i++ {
		out[i] = floatFromBits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

func decodeMetricXOR(payload []byte, rows int, out []float64) error {
	// Every value costs ≥ 1 control byte.
	if rows > len(payload) {
		return fmt.Errorf("brick: xor metric column has %d bytes for %d rows", len(payload), rows)
	}
	r := colReader{data: payload}
	prev := uint64(0)
	for i := 0; i < rows; i++ {
		ctrl, err := r.readByte()
		if err != nil {
			return err
		}
		lz, tz := int(ctrl>>4), int(ctrl&0x0F)
		if lz > 8 || tz > 8 || lz+tz > 8 {
			return fmt.Errorf("brick: xor control byte %#x invalid at row %d", ctrl, i)
		}
		s := 8 - lz - tz
		if lz == 8 {
			s = 0
		}
		sig, err := r.take(s)
		if err != nil {
			return err
		}
		var x uint64
		for j := s - 1; j >= 0; j-- {
			x = x<<8 | uint64(sig[j])
		}
		x <<= 8 * tz
		prev ^= x
		out[i] = floatFromBits(prev)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("brick: xor metric column has %d trailing bytes", r.remaining())
	}
	return nil
}

func decodeMetricDict(payload []byte, rows int, out []float64) error {
	r := colReader{data: payload}
	k64, err := r.readUvarint()
	if err != nil {
		return err
	}
	if k64 == 0 || k64 > uint64(dictMaxCard) || k64 > uint64(rows) {
		return fmt.Errorf("brick: metric dictionary has %d entries for %d rows", k64, rows)
	}
	k := int(k64)
	dictBytes, err := r.take(8 * k)
	if err != nil {
		return err
	}
	cwb, err := r.readByte()
	if err != nil {
		return err
	}
	cw := int(cwb)
	if cw > 32 {
		return fmt.Errorf("brick: metric dictionary code width %d", cw)
	}
	packed, err := r.take(packedLen(rows, cw))
	if err != nil {
		return err
	}
	if r.remaining() != 0 {
		return fmt.Errorf("brick: dict metric column has %d trailing bytes", r.remaining())
	}
	dict := make([]float64, k)
	for i := range dict {
		dict[i] = floatFromBits(binary.LittleEndian.Uint64(dictBytes[8*i:]))
	}
	if cw == 0 {
		for i := 0; i < rows; i++ {
			out[i] = dict[0]
		}
		return nil
	}
	var acc uint64
	nbits, pos := 0, 0
	mask := uint64(1)<<cw - 1
	for i := 0; i < rows; i++ {
		for nbits < cw {
			acc |= uint64(packed[pos]) << nbits
			pos++
			nbits += 8
		}
		c := acc & mask
		acc >>= cw
		nbits -= cw
		if c >= k64 {
			return fmt.Errorf("brick: metric dictionary code %d out of range at row %d", c, i)
		}
		out[i] = dict[c]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Whole-blob decode (projection-aware, scratch-pooled)

// visitScratch is the pooled per-visit decode workspace: column buffers,
// run/code/dict views, the flate output buffer for SSD reads, and the Batch
// handed to the callback. Reused across scans via visitPool so steady-state
// scanning allocates nothing.
type visitScratch struct {
	dimBufs  [][]uint32
	metBufs  [][]float64
	runBufs  [][]Run
	codeBufs [][]uint32
	inflate  []byte
	batch    Batch
}

var visitPool = sync.Pool{New: func() any { return &visitScratch{} }}

func (sc *visitScratch) prepare(nDims, nMetrics int) *Batch {
	if len(sc.dimBufs) < nDims {
		sc.dimBufs = append(sc.dimBufs, make([][]uint32, nDims-len(sc.dimBufs))...)
		sc.runBufs = append(sc.runBufs, make([][]Run, nDims-len(sc.runBufs))...)
		sc.codeBufs = append(sc.codeBufs, make([][]uint32, nDims-len(sc.codeBufs))...)
	}
	if len(sc.metBufs) < nMetrics {
		sc.metBufs = append(sc.metBufs, make([][]float64, nMetrics-len(sc.metBufs))...)
	}
	b := &sc.batch
	b.Dims = resizeNil(b.Dims, nDims)
	b.DimRuns = resizeNilRuns(b.DimRuns, nDims)
	b.DimCodes = resizeNil(b.DimCodes, nDims)
	b.DimDict = resizeNil(b.DimDict, nDims)
	b.Metrics = resizeNilF(b.Metrics, nMetrics)
	b.Rows = 0
	return b
}

func resizeNil(s [][]uint32, n int) [][]uint32 {
	if cap(s) < n {
		s = make([][]uint32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func resizeNilF(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		s = make([][]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func resizeNilRuns(s [][]Run, n int) [][]Run {
	if cap(s) < n {
		s = make([][]Run, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func (sc *visitScratch) dimBuf(i, rows int) []uint32 {
	b := sc.dimBufs[i]
	if cap(b) < rows {
		b = make([]uint32, rows)
	} else {
		b = b[:rows]
	}
	sc.dimBufs[i] = b
	return b
}

func (sc *visitScratch) metBuf(i, rows int) []float64 {
	b := sc.metBufs[i]
	if cap(b) < rows {
		b = make([]float64, rows)
	} else {
		b = b[:rows]
	}
	sc.metBufs[i] = b
	return b
}

// decodeBlobInto decodes a v2 blob into the scratch's batch, honoring the
// projection. expectRows ≥ 0 is the brick's authoritative row count (a
// mismatch is corruption); expectRows < 0 accepts the blob's own count up
// to maxDecodeRows (import/fuzz paths).
func decodeBlobInto(data []byte, nDims, nMetrics, expectRows int, proj *Projection, sc *visitScratch) (*Batch, error) {
	r := colReader{data: data}
	if err := r.skip(2); err != nil {
		return nil, err
	}
	rows64, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if rows64 > maxDecodeRows {
		return nil, fmt.Errorf("brick: blob claims %d rows (max %d)", rows64, maxDecodeRows)
	}
	rows := int(rows64)
	if expectRows >= 0 && rows != expectRows {
		return nil, fmt.Errorf("brick: blob has %d rows, brick has %d", rows, expectRows)
	}
	batch := sc.prepare(nDims, nMetrics)
	batch.Rows = rows
	for i := 0; i < nDims; i++ {
		want := proj.dim(i)
		enc, err := r.readByte()
		if err != nil {
			return nil, err
		}
		switch enc {
		case dimEncRaw:
			payload, err := r.take(4 * rows)
			if err != nil {
				return nil, err
			}
			if want == ColSkip {
				continue
			}
			out := sc.dimBuf(i, rows)
			if err := decodeDimRaw(payload, rows, out); err != nil {
				return nil, err
			}
			batch.Dims[i] = out
		case dimEncFOR:
			base64v, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			if base64v > 0xFFFFFFFF {
				return nil, fmt.Errorf("brick: FOR base overflows uint32")
			}
			wb, err := r.readByte()
			if err != nil {
				return nil, err
			}
			width := int(wb)
			if width > 32 {
				return nil, fmt.Errorf("brick: FOR width %d", width)
			}
			packed, err := r.take(packedLen(rows, width))
			if err != nil {
				return nil, err
			}
			if want == ColSkip {
				continue
			}
			if want == ColGroupEncoded && width == 0 && rows > 0 {
				// A zero-width FOR column is constant: one run.
				runs := sc.runBufs[i][:0]
				runs = append(runs, Run{Value: uint32(base64v), Length: int32(rows)})
				sc.runBufs[i] = runs
				batch.DimRuns[i] = runs
				continue
			}
			out := sc.dimBuf(i, rows)
			if err := decodeDimFOR(packed, uint32(base64v), width, rows, out); err != nil {
				return nil, err
			}
			batch.Dims[i] = out
		case dimEncRLE:
			plen, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return nil, err
			}
			if want == ColSkip {
				continue
			}
			runs, err := decodeDimRLE(payload, rows, sc.runBufs[i])
			if err != nil {
				return nil, err
			}
			sc.runBufs[i] = runs
			if want == ColGroupEncoded {
				batch.DimRuns[i] = runs
				continue
			}
			out := sc.dimBuf(i, rows)
			expandRuns(runs, out)
			batch.Dims[i] = out
		case dimEncDelta:
			plen, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return nil, err
			}
			if want == ColSkip {
				continue
			}
			out := sc.dimBuf(i, rows)
			if err := decodeDimDelta(payload, rows, out); err != nil {
				return nil, err
			}
			batch.Dims[i] = out
		case dimEncDict:
			plen, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return nil, err
			}
			if want == ColSkip {
				continue
			}
			dict, codes, err := decodeDimDict(payload, rows, sc.codeBufs[i])
			if err != nil {
				return nil, err
			}
			sc.codeBufs[i] = codes
			if want == ColGroupEncoded {
				batch.DimDict[i] = dict
				batch.DimCodes[i] = codes
				continue
			}
			out := sc.dimBuf(i, rows)
			for j, c := range codes {
				out[j] = dict[c]
			}
			batch.Dims[i] = out
		default:
			return nil, fmt.Errorf("brick: unknown dim encoding %d", enc)
		}
	}
	for i := 0; i < nMetrics; i++ {
		enc, err := r.readByte()
		if err != nil {
			return nil, err
		}
		switch enc {
		case metEncRaw:
			payload, err := r.take(8 * rows)
			if err != nil {
				return nil, err
			}
			if !proj.metric(i) {
				continue
			}
			out := sc.metBuf(i, rows)
			if err := decodeMetricRaw(payload, rows, out); err != nil {
				return nil, err
			}
			batch.Metrics[i] = out
		case metEncXOR:
			plen, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return nil, err
			}
			if !proj.metric(i) {
				continue
			}
			out := sc.metBuf(i, rows)
			if err := decodeMetricXOR(payload, rows, out); err != nil {
				return nil, err
			}
			batch.Metrics[i] = out
		case metEncConst:
			payload, err := r.take(8)
			if err != nil {
				return nil, err
			}
			if !proj.metric(i) {
				continue
			}
			v := floatFromBits(binary.LittleEndian.Uint64(payload))
			out := sc.metBuf(i, rows)
			for j := range out {
				out[j] = v
			}
			batch.Metrics[i] = out
		case metEncDict:
			plen, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return nil, err
			}
			if !proj.metric(i) {
				continue
			}
			out := sc.metBuf(i, rows)
			if err := decodeMetricDict(payload, rows, out); err != nil {
				return nil, err
			}
			batch.Metrics[i] = out
		default:
			return nil, fmt.Errorf("brick: unknown metric encoding %d", enc)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("brick: blob has %d trailing bytes", r.remaining())
	}
	return batch, nil
}

// decodeBlobOwned fully materializes a blob (v1 or v2) into freshly
// allocated columns the caller may keep — the Decompress/Import path.
func decodeBlobOwned(data []byte, nDims, nMetrics, expectRows int) (dims [][]uint32, mets [][]float64, rows int, err error) {
	if !isV2Blob(data) {
		dims, mets, rows, err = decodeColumns(data, nDims, nMetrics)
		if err == nil && expectRows >= 0 && rows != expectRows {
			err = fmt.Errorf("brick: blob has %d rows, brick has %d", rows, expectRows)
		}
		return dims, mets, rows, err
	}
	sc := &visitScratch{}
	batch, err := decodeBlobInto(data, nDims, nMetrics, expectRows, nil, sc)
	if err != nil {
		return nil, nil, 0, err
	}
	// The batch views alias the throwaway scratch, so handing them out is
	// safe — but guarantee exact-length slices for column adoption.
	dims = make([][]uint32, nDims)
	for i := range dims {
		dims[i] = batch.Dims[i][:batch.Rows:batch.Rows]
	}
	mets = make([][]float64, nMetrics)
	for i := range mets {
		mets[i] = batch.Metrics[i][:batch.Rows:batch.Rows]
	}
	return dims, mets, batch.Rows, nil
}

// EncodingStats summarizes which encodings the store's compressed bricks
// chose, by parsing each resident blob header. Evicted bricks are skipped
// (their blobs are behind flate).
type EncodingStats struct {
	Dims    map[string]int
	Metrics map[string]int
}

var metEncName = [...]string{
	metEncRaw: "raw", metEncXOR: "xor", metEncConst: "const", metEncDict: "dict",
}
var dimEncName = [...]string{
	dimEncRaw: "raw", dimEncDict: "dict", dimEncRLE: "rle",
	dimEncFOR: "for", dimEncDelta: "delta",
}

// EncodingStats walks the resident encoded bricks and tallies the encoding
// each column chose — the observable behind the adaptive-encoding tests
// and the `brick.encode.*` counters.
func (s *Store) EncodingStats() EncodingStats {
	st := EncodingStats{Dims: map[string]int{}, Metrics: map[string]int{}}
	nd, nm := len(s.schema.Dimensions), len(s.schema.Metrics)
	for _, e := range s.snapshotBricks() {
		e.b.mu.Lock()
		data := e.b.encoded
		rows := e.b.rows
		e.b.mu.Unlock()
		if data == nil || !isV2Blob(data) {
			continue
		}
		r := colReader{data: data}
		_ = r.skip(2)
		if _, err := r.readUvarint(); err != nil {
			continue
		}
		ok := true
		for i := 0; i < nd && ok; i++ {
			enc, width, err := skipDimColumn(&r, rows)
			if err != nil {
				ok = false
				break
			}
			name := dimEncName[enc]
			if enc == dimEncFOR && width == 0 {
				name = "for0"
			}
			st.Dims[name]++
		}
		for i := 0; i < nm && ok; i++ {
			enc, err := skipMetricColumn(&r, rows)
			if err != nil {
				break
			}
			st.Metrics[metEncName[enc]]++
		}
	}
	return st
}

func skipDimColumn(r *colReader, rows int) (enc byte, width int, err error) {
	enc, err = r.readByte()
	if err != nil {
		return 0, 0, err
	}
	switch enc {
	case dimEncRaw:
		return enc, 0, r.skip(4 * rows)
	case dimEncFOR:
		if _, err := r.readUvarint(); err != nil {
			return 0, 0, err
		}
		wb, err := r.readByte()
		if err != nil {
			return 0, 0, err
		}
		return enc, int(wb), r.skip(packedLen(rows, int(wb)))
	case dimEncDict, dimEncRLE, dimEncDelta:
		plen, err := r.readUvarint()
		if err != nil {
			return 0, 0, err
		}
		return enc, 0, r.skip(int(plen))
	}
	return 0, 0, fmt.Errorf("brick: unknown dim encoding %d", enc)
}

// rleBoundsMaxRuns caps the run-header walk blobBoundsPrune performs on an
// RLE column; beyond it the min/max scan costs more than it saves and the
// column is treated as unbounded.
const rleBoundsMaxRuns = 4096

// blobBoundsPrune reports whether the v2 blob's per-column statistics prove
// that no row can match the filter, without decoding any column. Only FOR
// columns (base and width give an exact lower and a conservative upper
// bound) and dictionary columns (sorted values: the first entry and the
// summed deltas are the exact min/max) carry usable bounds; other encodings
// are walked past. Any structural inconsistency returns false — pruning is
// an optimization, and the full decoder is the authority on corrupt blobs.
func blobBoundsPrune(data []byte, rows, nDims int, f *Filter) bool {
	if f == nil || len(f.Ranges) == 0 || !isV2Blob(data) {
		return false
	}
	maxIdx := -1
	for di := range f.Ranges {
		if di > maxIdx {
			maxIdx = di
		}
	}
	if maxIdx >= nDims {
		return false
	}
	r := colReader{data: data}
	if err := r.skip(2); err != nil {
		return false
	}
	if hdrRows, err := r.readUvarint(); err != nil || hdrRows != uint64(rows) {
		return false
	}
	for di := 0; di <= maxIdx; di++ {
		rng, filtered := f.Ranges[di]
		if !filtered {
			if _, _, err := skipDimColumn(&r, rows); err != nil {
				return false
			}
			continue
		}
		enc, err := r.readByte()
		if err != nil {
			return false
		}
		switch enc {
		case dimEncFOR:
			base, err := r.readUvarint()
			if err != nil || base > 0xFFFFFFFF {
				return false
			}
			wb, err := r.readByte()
			if err != nil || wb > 32 {
				return false
			}
			if r.skip(packedLen(rows, int(wb))) != nil {
				return false
			}
			hi := base
			if wb > 0 {
				hi += uint64(1)<<wb - 1
			}
			if hi > 0xFFFFFFFF {
				hi = 0xFFFFFFFF
			}
			if uint64(rng[1]) < base || uint64(rng[0]) > hi {
				return true
			}
		case dimEncDict:
			plen, err := r.readUvarint()
			if err != nil {
				return false
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return false
			}
			pr := colReader{data: payload}
			k, err := pr.readUvarint()
			if err != nil || k == 0 || k > dictMaxCard {
				return false
			}
			v, err := pr.readUvarint()
			if err != nil || v > 0xFFFFFFFF {
				return false
			}
			lo := uint32(v)
			for i := uint64(1); i < k; i++ {
				d, err := pr.readUvarint()
				if err != nil || d == 0 {
					return false
				}
				v += d
				if v > 0xFFFFFFFF {
					return false
				}
			}
			if uint64(rng[1]) < uint64(lo) || uint64(rng[0]) > v {
				return true
			}
		case dimEncRaw:
			if r.skip(4*rows) != nil {
				return false
			}
		case dimEncRLE:
			plen, err := r.readUvarint()
			if err != nil {
				return false
			}
			payload, err := r.take(int(plen))
			if err != nil {
				return false
			}
			pr := colReader{data: payload}
			k, err := pr.readUvarint()
			// Run values are plain uvarints, so min/max cost one walk over
			// the run headers — worth it only while the run count stays
			// small; a noisy column falls through unpruned.
			if err != nil || k == 0 || k > rleBoundsMaxRuns {
				continue
			}
			var lo, hi uint64 = 0xFFFFFFFFFF, 0
			for i := uint64(0); i < k; i++ {
				v, err := pr.readUvarint()
				if err != nil || v > 0xFFFFFFFF {
					return false
				}
				if _, err := pr.readUvarint(); err != nil { // run length
					return false
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if uint64(rng[1]) < lo || uint64(rng[0]) > hi {
				return true
			}
		case dimEncDelta:
			plen, err := r.readUvarint()
			if err != nil || r.skip(int(plen)) != nil {
				return false
			}
		default:
			return false
		}
	}
	return false
}

func skipMetricColumn(r *colReader, rows int) (enc byte, err error) {
	enc, err = r.readByte()
	if err != nil {
		return 0, err
	}
	switch enc {
	case metEncRaw:
		return enc, r.skip(8 * rows)
	case metEncXOR, metEncDict:
		plen, err := r.readUvarint()
		if err != nil {
			return 0, err
		}
		return enc, r.skip(int(plen))
	case metEncConst:
		return enc, r.skip(8)
	}
	return 0, fmt.Errorf("brick: unknown metric encoding %d", enc)
}
