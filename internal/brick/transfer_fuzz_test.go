package brick

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"testing"
)

// FuzzTransfer drives the transfer-blob decoder shared by Import and
// ImportBricks with untrusted input — the bytes a migration target accepts
// from the network. Whatever arrives: no panics, no giant allocations from
// forged counts/lengths, and a rejected blob leaves the store untouched.
func FuzzTransfer(f *testing.F) {
	src, _ := NewStore(testSchema())
	for i := uint32(0); i < 64; i++ {
		src.Insert([]uint32{i % 16, i % 100, i % 365}, []float64{float64(i), 1})
	}
	if valid, err := src.Export(); err == nil {
		f.Add(valid)
	}
	if delta, _, err := src.ExportSince(3); err == nil {
		f.Add(delta)
	}
	// Forged header: claims 2^60 bricks in a few bytes.
	forge := func(fields ...uint64) []byte {
		var raw bytes.Buffer
		var scratch [binary.MaxVarintLen64]byte
		for _, v := range fields {
			n := binary.PutUvarint(scratch[:], v)
			raw.Write(scratch[:n])
		}
		var out bytes.Buffer
		w, _ := flate.NewWriter(&out, flate.BestSpeed)
		w.Write(raw.Bytes())
		w.Close()
		return out.Bytes()
	}
	f.Add(forge(1 << 60))
	f.Add(forge(1, 7, 1<<50))         // one brick, payload length forged huge
	f.Add(forge(2, 0, 0, 0, 1, 0xFF)) // short payloads
	f.Add([]byte{})
	f.Add([]byte("not flate at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dst, _ := NewStore(testSchema())
		dst.Insert([]uint32{1, 2, 3}, []float64{42, 0})
		before := dst.Rows()

		if _, err := dst.ImportBricks(data); err != nil {
			// Rejected: the resident brick must be intact.
			if dst.Rows() != before {
				t.Fatalf("rejected blob changed rows: %d -> %d", before, dst.Rows())
			}
		} else if dst.Rows() < 0 {
			t.Fatalf("accepted blob drove rows negative: %d", dst.Rows())
		}

		full, _ := NewStore(testSchema())
		if err := full.Import(data); err == nil {
			// Accepted by the full-replace path: the store must be
			// internally consistent — a scan visits exactly Rows() rows.
			var n int64
			full.Scan(nil, func(_ []uint32, _ []float64) error { n++; return nil })
			if n != full.Rows() {
				t.Fatalf("imported store scans %d rows, reports %d", n, full.Rows())
			}
		}
	})
}
