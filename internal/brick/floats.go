package brick

import "math"

// floatBits and floatFromBits isolate the unsafe-free float serialization
// used by the column codec.
func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
