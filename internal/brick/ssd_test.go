package brick

import "testing"

// loadTiered builds a store with distinct hot/cold brick populations.
func loadTiered(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1600; i++ {
		s.Insert([]uint32{i % 16, (i / 16) % 100, 0}, []float64{1, 1})
	}
	// Heat region bucket 0 heavily, bucket 1 mildly, leave the rest cold.
	for i := 0; i < 50; i++ {
		s.Scan(&Filter{Ranges: map[int][2]uint32{0: {0, 3}}}, func([]uint32, []float64) error { return nil })
	}
	for i := 0; i < 5; i++ {
		s.Scan(&Filter{Ranges: map[int][2]uint32{0: {4, 7}}}, func([]uint32, []float64) error { return nil })
	}
	return s
}

func TestEvictUnevictLifecycle(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{1, 2})
	var b *Brick
	for _, e := range s.snapshotBricks() {
		b = e.b
	}
	if err := b.Evict(); err != nil {
		t.Fatal(err)
	}
	if !b.IsEvicted() || !b.IsCompressed() {
		t.Fatal("evicted brick must be compressed and flagged")
	}
	if b.MemoryBytes(s.Schema()) != 0 {
		t.Fatalf("evicted memory = %d, want 0", b.MemoryBytes(s.Schema()))
	}
	if b.SSDBytes() == 0 {
		t.Fatal("evicted brick has no SSD footprint")
	}
	b.Unevict()
	if b.IsEvicted() || b.MemoryBytes(s.Schema()) == 0 {
		t.Fatal("unevict did not restore residency")
	}
	if b.SSDBytes() != 0 {
		t.Fatal("resident brick still has SSD footprint")
	}
}

func TestEvictEmptyBrickNoop(t *testing.T) {
	b := newBrick(1, 1)
	if err := b.Evict(); err != nil {
		t.Fatal(err)
	}
	if b.IsEvicted() {
		t.Fatal("empty brick claims evicted")
	}
}

func TestScanEvictedBrickCountsIOPS(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{5, 0})
	for _, e := range s.snapshotBricks() {
		e.b.Evict()
	}
	var sum float64
	if err := s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil }); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("sum over evicted store = %v", sum)
	}
	if s.SSDReads() != 1 {
		t.Fatalf("SSDReads = %d, want 1", s.SSDReads())
	}
	// Reads must not change residency: the brick stays on SSD.
	if s.EvictedBrickCount() != 1 {
		t.Fatal("scan promoted the brick")
	}
}

func TestDecompressClearsEviction(t *testing.T) {
	s, _ := NewStore(testSchema())
	s.Insert([]uint32{0, 0, 0}, []float64{1, 0})
	var b *Brick
	for _, e := range s.snapshotBricks() {
		b = e.b
	}
	b.Evict()
	// Ingest into an evicted brick pulls it back to memory uncompressed.
	if err := s.Insert([]uint32{0, 0, 0}, []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	if b.IsEvicted() || b.IsCompressed() {
		t.Fatal("insert did not promote evicted brick")
	}
	var sum float64
	s.Scan(nil, func(_ []uint32, m []float64) error { sum += m[0]; return nil })
	if sum != 3 {
		t.Fatalf("sum = %v, want 3", sum)
	}
}

func TestEnsureTieredEvictsColdestFirst(t *testing.T) {
	s := loadTiered(t)
	// Budget below even the compressed footprint forces eviction.
	c, ev, _, err := s.EnsureTiered(1024, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if c == 0 || ev == 0 {
		t.Fatalf("EnsureTiered compressed=%d evicted=%d, want both > 0", c, ev)
	}
	if s.MemoryBytes() > s.UncompressedBytes() {
		t.Fatal("accounting broken")
	}
	// The hottest bricks (region bucket 0) must not be on SSD while colder
	// bricks are resident.
	var hottestEvicted, colderResident bool
	for _, h := range s.HotnessSnapshot() {
		bounds, _ := s.Schema().BrickBounds(h.BrickID)
		hot := bounds[0][0] == 0
		if hot && h.Hotness >= 50 {
			for _, e := range s.snapshotBricks() {
				if e.id == h.BrickID && e.b.IsEvicted() {
					hottestEvicted = true
				}
			}
		}
	}
	_ = colderResident
	if hottestEvicted {
		t.Fatal("hottest brick evicted while colder candidates existed")
	}
}

func TestEnsureTieredPromotesUnderSurplus(t *testing.T) {
	s := loadTiered(t)
	if _, _, _, err := s.EnsureTiered(0, 0.8); err != nil {
		t.Fatal(err) // evict everything
	}
	if s.EvictedBrickCount() == 0 {
		t.Fatal("setup: nothing evicted")
	}
	before := s.EvictedBrickCount()
	_, _, promoted, err := s.EnsureTiered(s.UncompressedBytes()*4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == 0 || s.EvictedBrickCount() >= before {
		t.Fatalf("surplus promoted %d bricks (evicted %d -> %d)", promoted, before, s.EvictedBrickCount())
	}
}

func TestWorkingSetBytes(t *testing.T) {
	s := loadTiered(t)
	// Every brick has heat 40 from ingest alone; the 50-scan hot region
	// sits near 90. Threshold 60 selects just the hot working set.
	ws := s.WorkingSetBytes(60)
	if ws <= 0 || ws >= s.UncompressedBytes() {
		t.Fatalf("working set = %d of %d total — want a strict subset", ws, s.UncompressedBytes())
	}
	// Threshold 0 counts everything.
	if s.WorkingSetBytes(0) != s.UncompressedBytes() {
		t.Fatal("zero threshold must cover the full store")
	}
}

func TestSSDBytesAccounting(t *testing.T) {
	s := loadTiered(t)
	if s.SSDBytes() != 0 {
		t.Fatal("fresh store has SSD footprint")
	}
	s.EnsureTiered(0, 0.8)
	if s.SSDBytes() == 0 {
		t.Fatal("no SSD footprint after full eviction")
	}
	if s.MemoryBytes() != 0 {
		t.Fatalf("memory = %d after full eviction, want 0", s.MemoryBytes())
	}
}
