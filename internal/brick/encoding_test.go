package brick

import (
	"bytes"
	"compress/flate"
	"fmt"
	"testing"

	"cubrick/internal/randutil"
)

// blobDimEncs parses a v2 blob's dimension column headers, returning the
// encoding name each column chose ("for0" for a constant FOR column).
func blobDimEncs(t *testing.T, blob []byte, nDims, rows int) []string {
	t.Helper()
	r := colReader{data: blob}
	if err := r.skip(2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.readUvarint(); err != nil {
		t.Fatal(err)
	}
	names := make([]string, nDims)
	for i := 0; i < nDims; i++ {
		enc, width, err := skipDimColumn(&r, rows)
		if err != nil {
			t.Fatalf("dim %d: %v", i, err)
		}
		names[i] = dimEncName[enc]
		if enc == dimEncFOR && width == 0 {
			names[i] = "for0"
		}
	}
	return names
}

func blobMetricEncs(t *testing.T, blob []byte, nDims, nMetrics, rows int) []string {
	t.Helper()
	r := colReader{data: blob}
	_ = r.skip(2)
	if _, err := r.readUvarint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nDims; i++ {
		if _, _, err := skipDimColumn(&r, rows); err != nil {
			t.Fatal(err)
		}
	}
	names := make([]string, nMetrics)
	for i := 0; i < nMetrics; i++ {
		enc, err := skipMetricColumn(&r, rows)
		if err != nil {
			t.Fatalf("metric %d: %v", i, err)
		}
		names[i] = metEncName[enc]
	}
	return names
}

// dimShapes are the dimension column shapes the chooser must both pick the
// expected encoding for and round-trip exactly.
func dimShapes(rnd *randutil.Source, n int) map[string][]uint32 {
	constant := make([]uint32, n)
	for i := range constant {
		constant[i] = 7
	}
	runs := make([]uint32, n)
	for i := range runs {
		runs[i] = uint32(i / (n/4 + 1))
	}
	sparse := make([]uint32, n)
	for i := range sparse {
		sparse[i] = uint32(10000 * (1 + rnd.Intn(8)))
	}
	sequential := make([]uint32, n)
	for i := range sequential {
		sequential[i] = uint32(i)
	}
	random := make([]uint32, n)
	for i := range random {
		random[i] = uint32(rnd.Int63())
	}
	boundary := make([]uint32, n)
	for i := range boundary {
		if i%2 == 0 {
			boundary[i] = 0
		} else {
			boundary[i] = 0xFFFFFFFF
		}
	}
	return map[string][]uint32{
		"constant": constant, "runs": runs, "sparse": sparse,
		"sequential": sequential, "random": random, "boundary": boundary,
	}
}

func TestDimEncodingChoiceAndRoundTrip(t *testing.T) {
	rnd := randutil.New(1)
	const n = 1000
	want := map[string]string{
		"constant":   "for0",
		"runs":       "rle",
		"sparse":     "dict",
		"sequential": "delta",
		"random":     "raw",
	}
	for name, col := range dimShapes(rnd, n) {
		blob := encodeBrickBlob([][]uint32{col}, nil, n, nil)
		if w, ok := want[name]; ok {
			if got := blobDimEncs(t, blob, 1, n)[0]; got != w {
				t.Errorf("%s: chose %s, want %s", name, got, w)
			}
		}
		dims, _, rows, err := decodeBlobOwned(blob, 1, 0, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rows != n {
			t.Fatalf("%s: rows %d", name, rows)
		}
		for i := range col {
			if dims[0][i] != col[i] {
				t.Fatalf("%s: row %d: %d != %d", name, i, dims[0][i], col[i])
			}
		}
	}
}

func TestMetricEncodingChoiceAndRoundTrip(t *testing.T) {
	rnd := randutil.New(2)
	const n = 1000
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 42.5
	}
	nan := make([]float64, n)
	for i := range nan {
		nan[i] = floatFromBits(0x7FF8000000000001) // one fixed NaN pattern
	}
	specials := make([]float64, n)
	pool := []float64{0, floatFromBits(0x8000000000000000), // -0
		floatFromBits(0x7FF0000000000000),                       // +Inf
		floatFromBits(0xFFF0000000000000),                       // -Inf
		floatFromBits(0x7FF8000000000000), 1.5, -2.25, 1e300, 5, // NaN
	}
	for i := range specials {
		specials[i] = pool[rnd.Intn(len(pool))]
	}
	smooth := make([]float64, n) // ramp: too many distincts for dict, xor-friendly
	for i := range smooth {
		smooth[i] = float64(i) / 4
	}
	lowcard := make([]float64, n)
	for i := range lowcard {
		lowcard[i] = float64(i%16) * 1.25
	}
	random := make([]float64, n)
	for i := range random {
		random[i] = floatFromBits(uint64(rnd.Int63())<<1 | uint64(rnd.Intn(2)))
	}
	shapes := map[string][]float64{
		"constant": constant, "nan": nan, "specials": specials,
		"smooth": smooth, "lowcard": lowcard, "random": random,
	}
	want := map[string]string{
		"constant": "const", "nan": "const", "smooth": "xor",
		"lowcard": "dict", "random": "raw",
	}
	for name, col := range shapes {
		blob := encodeBrickBlob(nil, [][]float64{col}, n, nil)
		if w, ok := want[name]; ok {
			if got := blobMetricEncs(t, blob, 0, 1, n)[0]; got != w {
				t.Errorf("%s: chose %s, want %s", name, got, w)
			}
		}
		_, mets, _, err := decodeBlobOwned(blob, 0, 1, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range col {
			// Bit equality, so NaN payloads and -0 must survive.
			if floatBits(mets[0][i]) != floatBits(col[i]) {
				t.Fatalf("%s: row %d: %x != %x", name, i,
					floatBits(mets[0][i]), floatBits(col[i]))
			}
		}
	}
}

// TestBlobRoundTripProperty is the encode→decode property test: random
// multi-column bricks of every shape mix must decode bit-identically.
func TestBlobRoundTripProperty(t *testing.T) {
	rnd := randutil.New(20260805)
	for trial := 0; trial < 60; trial++ {
		rows := 1 + rnd.Intn(3000)
		nDims := 1 + rnd.Intn(4)
		nMetrics := rnd.Intn(3)
		dims := make([][]uint32, nDims)
		for d := range dims {
			col := make([]uint32, rows)
			switch rnd.Intn(5) {
			case 0: // constant
				v := uint32(rnd.Int63())
				for i := range col {
					col[i] = v
				}
			case 1: // runs
				v := uint32(rnd.Intn(100))
				for i := range col {
					if rnd.Bernoulli(0.02) {
						v = uint32(rnd.Intn(100))
					}
					col[i] = v
				}
			case 2: // low cardinality
				card := 1 + rnd.Intn(50)
				for i := range col {
					col[i] = uint32(rnd.Intn(card)) * 997
				}
			case 3: // sorted
				v := uint32(rnd.Intn(1000))
				for i := range col {
					v += uint32(rnd.Intn(5))
					col[i] = v
				}
			default: // random
				for i := range col {
					col[i] = uint32(rnd.Int63())
				}
			}
			dims[d] = col
		}
		mets := make([][]float64, nMetrics)
		for m := range mets {
			col := make([]float64, rows)
			switch rnd.Intn(3) {
			case 0:
				v := floatFromBits(uint64(rnd.Int63()))
				for i := range col {
					col[i] = v
				}
			case 1:
				for i := range col {
					col[i] = float64(rnd.Intn(1 << 12))
				}
			default:
				for i := range col {
					col[i] = floatFromBits(uint64(rnd.Int63())<<1 | uint64(rnd.Intn(2)))
				}
			}
			mets[m] = col
		}
		blob := encodeBrickBlob(dims, mets, rows, nil)
		gotDims, gotMets, gotRows, err := decodeBlobOwned(blob, nDims, nMetrics, rows)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gotRows != rows {
			t.Fatalf("trial %d: rows %d != %d", trial, gotRows, rows)
		}
		for d := range dims {
			for i := range dims[d] {
				if gotDims[d][i] != dims[d][i] {
					t.Fatalf("trial %d dim %d row %d: %d != %d",
						trial, d, i, gotDims[d][i], dims[d][i])
				}
			}
		}
		for m := range mets {
			for i := range mets[m] {
				if floatBits(gotMets[m][i]) != floatBits(mets[m][i]) {
					t.Fatalf("trial %d metric %d row %d differs", trial, m, i)
				}
			}
		}
	}
}

// TestProjectionSkipsColumns checks that visitBatch leaves unreferenced
// columns nil and decodes referenced ones correctly.
func TestProjectionSkipsColumns(t *testing.T) {
	b := newBrick(3, 2)
	for i := 0; i < 500; i++ {
		b.append([]uint32{uint32(i % 4), uint32(i), uint32(i % 7)}, []float64{float64(i), 1})
	}
	if err := b.Compress(); err != nil {
		t.Fatal(err)
	}
	proj := &Projection{
		Dims:    []ColRequest{ColNeed, ColSkip, ColSkip},
		Metrics: []bool{false, true},
	}
	err := b.visitBatch(proj, func(batch *Batch) error {
		if batch.Rows != 500 {
			return fmt.Errorf("rows %d", batch.Rows)
		}
		if batch.Dims[0] == nil || batch.Dims[1] != nil || batch.Dims[2] != nil {
			return fmt.Errorf("dim projection not honored: %v", batch.Dims)
		}
		if batch.Metrics[0] != nil || batch.Metrics[1] == nil {
			return fmt.Errorf("metric projection not honored")
		}
		for i := range batch.Dims[0] {
			if batch.Dims[0][i] != uint32(i%4) {
				return fmt.Errorf("dim0 row %d = %d", i, batch.Dims[0][i])
			}
			if batch.Metrics[1][i] != 1 {
				return fmt.Errorf("metric1 row %d = %v", i, batch.Metrics[1][i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupEncodedViews checks the three ColGroupEncoded delivery shapes:
// runs for RLE, codes+dict for dictionary, a single run for constant FOR.
func TestGroupEncodedViews(t *testing.T) {
	const n = 600
	rleCol := make([]uint32, n)   // long runs → rle
	dictCol := make([]uint32, n)  // sparse low-card → dict
	constCol := make([]uint32, n) // constant → for0
	rnd := randutil.New(3)
	for i := range rleCol {
		rleCol[i] = uint32(i / 100)
		dictCol[i] = uint32(10000 * (1 + rnd.Intn(6)))
		constCol[i] = 9
	}
	b := newBrick(3, 0)
	b.dims = [][]uint32{rleCol, dictCol, constCol}
	b.rows = n
	if err := b.Compress(); err != nil {
		t.Fatal(err)
	}
	proj := &Projection{Dims: []ColRequest{ColGroupEncoded, ColGroupEncoded, ColGroupEncoded}}
	err := b.visitBatch(proj, func(batch *Batch) error {
		runs := batch.Runs(0)
		if runs == nil || batch.Dims[0] != nil {
			return fmt.Errorf("dim0: want run view, got %v / dims %v", runs, batch.Dims[0])
		}
		expanded := make([]uint32, n)
		expandRuns(runs, expanded)
		for i := range rleCol {
			if expanded[i] != rleCol[i] {
				return fmt.Errorf("dim0 run view wrong at %d", i)
			}
		}
		codes, dict := batch.Codes(1)
		if codes == nil || batch.Dims[1] != nil {
			return fmt.Errorf("dim1: want dictionary view")
		}
		for i := range dictCol {
			if dict[codes[i]] != dictCol[i] {
				return fmt.Errorf("dim1 dict view wrong at %d", i)
			}
		}
		cruns := batch.Runs(2)
		if len(cruns) != 1 || cruns[0].Value != 9 || int(cruns[0].Length) != n {
			return fmt.Errorf("dim2: want single constant run, got %v", cruns)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLegacyV1BlobDecode pins backward compatibility: payloads written in
// the pre-adaptive version-1 format must still decode, both resident and
// behind the SSD flate layer (the format bump is additive).
func TestLegacyV1BlobDecode(t *testing.T) {
	dims := [][]uint32{{1, 2, 3}, {7, 7, 7}}
	mets := [][]float64{{0.5, 1.5, -2}}
	v1 := encodeColumnsV1(dims, mets, 3)

	check := func(b *Brick) error {
		return b.visit(func(gd [][]uint32, gm [][]float64, rows int) error {
			if rows != 3 {
				return fmt.Errorf("rows %d", rows)
			}
			for d := range dims {
				for i := range dims[d] {
					if gd[d][i] != dims[d][i] {
						return fmt.Errorf("dim %d row %d", d, i)
					}
				}
			}
			for i := range mets[0] {
				if gm[0][i] != mets[0][i] {
					return fmt.Errorf("metric row %d", i)
				}
			}
			return nil
		})
	}

	resident := newBrick(2, 1)
	resident.rows = 3
	resident.encoded = append([]byte(nil), v1...)
	if err := check(resident); err != nil {
		t.Fatalf("resident v1: %v", err)
	}
	if err := resident.Decompress(); err != nil {
		t.Fatalf("decompress v1: %v", err)
	}
	if err := check(resident); err != nil {
		t.Fatalf("after decompress: %v", err)
	}

	var flated bytes.Buffer
	fw, _ := flate.NewWriter(&flated, flate.BestSpeed)
	fw.Write(v1)
	fw.Close()
	evicted := newBrick(2, 1)
	evicted.rows = 3
	evicted.ssd = flated.Bytes()
	evicted.encLen = len(v1)
	if err := check(evicted); err != nil {
		t.Fatalf("evicted v1: %v", err)
	}
	evicted.Unevict()
	if evicted.IsEvicted() {
		t.Fatal("unevict failed on v1 payload")
	}
	if err := check(evicted); err != nil {
		t.Fatalf("after unevict: %v", err)
	}
}

// TestCorruptBlobErrors drives deterministic corruption through the whole
// decoder: every truncation of a valid blob and a set of targeted
// mutations must return an error, never panic.
func TestCorruptBlobErrors(t *testing.T) {
	rnd := randutil.New(4)
	dims := make([][]uint32, 3)
	for d := range dims {
		col := make([]uint32, 200)
		for i := range col {
			switch d {
			case 0:
				col[i] = uint32(i / 40)
			case 1:
				col[i] = uint32(rnd.Intn(5)) * 50000
			default:
				col[i] = uint32(rnd.Int63())
			}
		}
		dims[d] = col
	}
	mets := [][]float64{make([]float64, 200)}
	for i := range mets[0] {
		mets[0][i] = float64(i % 9)
	}
	blob := encodeBrickBlob(dims, mets, 200, nil)
	for cut := 0; cut < len(blob); cut++ {
		if cut == 1 {
			// blob[:1] is 0x00 — the valid legacy empty-brick payload.
			continue
		}
		if _, _, _, err := decodeBlobOwned(blob[:cut], 3, 1, -1); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Forged row count: claims more rows than any payload could hold.
	forged := append([]byte{blobVersionByte0, blobVersionByte1}, appendUvarint(nil, maxDecodeRows+1)...)
	if _, _, _, err := decodeBlobOwned(forged, 3, 1, -1); err == nil {
		t.Fatal("oversized row count accepted")
	}
	// Unknown encoding byte.
	bad := append([]byte(nil), blob...)
	bad[3] = 0x7F
	if _, _, _, err := decodeBlobOwned(bad, 3, 1, -1); err == nil {
		t.Fatal("unknown encoding accepted")
	}
	// Trailing garbage.
	if _, _, _, err := decodeBlobOwned(append(append([]byte(nil), blob...), 0xAA), 3, 1, -1); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// Row-count mismatch against the brick's authoritative count.
	if _, _, _, err := decodeBlobOwned(blob, 3, 1, 199); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

// TestEncodingStatsObservable checks the Store-level encoding tally that
// the adaptive-encoding tests and operators read.
func TestEncodingStatsObservable(t *testing.T) {
	s, err := NewStore(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 400; i++ {
		s.Insert([]uint32{i % 4, 0, i % 365}, []float64{1, float64(i)})
	}
	if _, _, err := s.EnsureBudget(0, 0.5); err != nil {
		t.Fatal(err)
	}
	st := s.EncodingStats()
	total := 0
	for _, n := range st.Dims {
		total += n
	}
	if total != 3*s.BrickCount() {
		t.Fatalf("dim tally %v covers %d columns, want %d", st.Dims, total, 3*s.BrickCount())
	}
	if st.Dims["for0"] == 0 {
		t.Fatalf("expected constant app column to tally for0: %v", st.Dims)
	}
	if st.Metrics["const"] == 0 {
		t.Fatalf("expected constant events metric to tally const: %v", st.Metrics)
	}
}
