package cubrick_test

import (
	"strings"
	"testing"
	"time"

	cubrick "cubrick"
	"cubrick/internal/cluster"
	icubrick "cubrick/internal/cubrick"
)

func demoSchema() cubrick.Schema {
	return cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "app", Max: 20, Buckets: 4},
		},
		Metrics: []cubrick.Metric{{Name: "value"}},
	}
}

func openDB(t *testing.T) *cubrick.DB {
	t.Helper()
	cfg := cubrick.Defaults()
	cfg.Deployment.Policy.InitialPartitions = 4
	cfg.Deployment.Transport.RequestFailureProb = 0
	db, err := cubrick.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPILifecycle(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable("metrics", demoSchema()); err != nil {
		t.Fatal(err)
	}
	tables := db.Tables()
	if len(tables) != 1 || tables[0].Name != "metrics" || tables[0].Partitions != 4 {
		t.Fatalf("Tables = %+v", tables)
	}
	schema, err := db.Describe("metrics")
	if err != nil || len(schema.Dimensions) != 2 {
		t.Fatalf("Describe = %+v, %v", schema, err)
	}

	n := 100
	dims := make([][]uint32, n)
	mets := make([][]float64, n)
	var want float64
	for i := 0; i < n; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
		want += float64(i)
	}
	if err := db.Load("metrics", dims, mets); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query("SELECT SUM(value) AS total FROM metrics")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != want {
		t.Fatalf("sum = %v, want %v", res.Rows[0][0], want)
	}
	if res.Columns[0] != "total" {
		t.Fatalf("columns = %v", res.Columns)
	}

	res, err = db.Query("SELECT app, COUNT(*) FROM metrics WHERE ds < 10 GROUP BY app ORDER BY count(*) DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("limited rows = %d", len(res.Rows))
	}

	if err := db.DropTable("metrics"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT SUM(value) FROM metrics"); err == nil {
		t.Fatal("query after drop succeeded")
	}
}

func TestPublicAPIQueryErrors(t *testing.T) {
	db := openDB(t)
	if _, err := db.Query("nonsense"); err == nil {
		t.Fatal("bad CQL accepted")
	}
	if _, err := db.Query("SHOW TABLES"); err == nil {
		t.Fatal("non-SELECT accepted by Query")
	}
}

func TestPublicAPIFailoverTransparency(t *testing.T) {
	db := openDB(t)
	db.CreateTable("m", demoSchema())
	dims := [][]uint32{{1, 1}, {2, 2}}
	mets := [][]float64{{10}, {20}}
	db.Load("m", dims, mets)

	// Kill the host serving partition 0 in the first region; the proxy
	// must answer from another region without the caller noticing.
	dep := db.Deployment()
	shard := dep.Catalog.ShardOf("m", 0)
	a, _ := dep.SM.Assignment(icubrick.ServiceName(dep.Config.Regions[0]), shard)
	h, _ := dep.Fleet.Host(a.Primary())
	h.SetState(cluster.Down)

	res, err := db.Query("SELECT SUM(value) FROM m")
	if err != nil || res.Rows[0][0] != 30 {
		t.Fatalf("query during outage = %v, %v", res, err)
	}
	if db.Proxy().Retries.Value() == 0 {
		t.Fatal("no cross-region retry recorded")
	}

	// Advance time: heartbeats lapse, SM fails over, region heals.
	for i := 0; i < 20; i++ {
		db.Advance(10 * time.Second)
	}
	res, err = db.Query("SELECT SUM(value) FROM m")
	if err != nil || res.Rows[0][0] != 30 {
		t.Fatalf("query after failover = %v, %v", res, err)
	}
}

func TestPublicAPIRepartition(t *testing.T) {
	cfg := cubrick.Defaults()
	cfg.Deployment.Policy.InitialPartitions = 2
	cfg.Deployment.Policy.MaxPartitionBytes = 1024
	cfg.Deployment.Transport.RequestFailureProb = 0
	db, err := cubrick.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("g", demoSchema())
	n := 1000
	dims := make([][]uint32, n)
	mets := make([][]float64, n)
	for i := 0; i < n; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{1}
	}
	db.Load("g", dims, mets)
	summary, err := db.Repartition("g")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(summary, "grow:") {
		t.Fatalf("summary = %q", summary)
	}
	res, err := db.Query("SELECT COUNT(*) FROM g")
	if err != nil || res.Rows[0][0] != float64(n) {
		t.Fatalf("count after repartition = %v, %v", res, err)
	}
	if res.Partitions != 4 {
		t.Fatalf("partitions = %d, want 4", res.Partitions)
	}
}
