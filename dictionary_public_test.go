package cubrick_test

import (
	"testing"

	cubrick "cubrick"
)

// setupDictTable builds a table whose "country" dimension is
// dictionary-encoded, with known per-country sums.
func setupDictTable(t *testing.T) (*cubrick.DB, map[string]float64) {
	t.Helper()
	db := openDB(t)
	schema := cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "country", Max: 64, Buckets: 8},
		},
		Metrics: []cubrick.Metric{{Name: "revenue"}},
	}
	if err := db.CreateTable("sales", schema); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableDictionary("sales", "country"); err != nil {
		t.Fatal(err)
	}
	countries := []string{"US", "BR", "JP", "DE"}
	want := make(map[string]float64)
	var dims [][]uint32
	var mets [][]float64
	for day := uint32(0); day < 10; day++ {
		for i, c := range countries {
			id, err := db.Encode("sales", "country", c)
			if err != nil {
				t.Fatal(err)
			}
			rev := float64((i + 1) * 10)
			dims = append(dims, []uint32{day, id})
			mets = append(mets, []float64{rev})
			want[c] += rev
		}
	}
	if err := db.Load("sales", dims, mets); err != nil {
		t.Fatal(err)
	}
	return db, want
}

func TestDictionaryStringFilter(t *testing.T) {
	db, want := setupDictTable(t)
	res, err := db.Query("SELECT SUM(revenue) AS total FROM sales WHERE country = 'BR'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != want["BR"] {
		t.Fatalf("BR total = %v, want %v", res.Rows[0][0], want["BR"])
	}
	// Combined with numeric predicates.
	res, err = db.Query("SELECT SUM(revenue) FROM sales WHERE country = 'JP' AND ds < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != want["JP"]/2 {
		t.Fatalf("JP first half = %v, want %v", res.Rows[0][0], want["JP"]/2)
	}
}

func TestDictionaryUnknownLabelEmptyResult(t *testing.T) {
	db, _ := setupDictTable(t)
	res, err := db.Query("SELECT COUNT(*) AS n FROM sales WHERE country = 'ATLANTIS'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 {
		t.Fatalf("unknown label count = %v, want 0", res.Rows[0][0])
	}
}

func TestDictionaryEscapedQuoteAndDecode(t *testing.T) {
	db, _ := setupDictTable(t)
	id, err := db.Encode("sales", "country", "COTE D'IVOIRE")
	if err != nil {
		t.Fatal(err)
	}
	db.Load("sales", [][]uint32{{1, id}}, [][]float64{{7}})
	res, err := db.Query("SELECT SUM(revenue) FROM sales WHERE country = 'COTE D''IVOIRE'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 7 {
		t.Fatalf("escaped label sum = %v, want 7", res.Rows[0][0])
	}
	// Decode round trip.
	s, err := db.Decode("sales", "country", id)
	if err != nil || s != "COTE D'IVOIRE" {
		t.Fatalf("Decode = %q, %v", s, err)
	}
}

func TestDictionaryErrors(t *testing.T) {
	db, _ := setupDictTable(t)
	if err := db.EnableDictionary("ghost", "x"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := db.EnableDictionary("sales", "nope"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if _, err := db.Encode("sales", "ds", "x"); err == nil {
		t.Fatal("encode on non-dictionary dimension accepted")
	}
	if _, err := db.Decode("sales", "ds", 0); err == nil {
		t.Fatal("decode on non-dictionary dimension accepted")
	}
	// String predicate on a non-dictionary dimension errors clearly.
	if _, err := db.Query("SELECT COUNT(*) FROM sales WHERE ds = 'monday'"); err == nil {
		t.Fatal("string predicate on numeric dimension accepted")
	}
	// Non-equality operator with a string is a parse error.
	if _, err := db.Query("SELECT COUNT(*) FROM sales WHERE country < 'US'"); err == nil {
		t.Fatal("ordered comparison on string accepted")
	}
}

func TestDictionaryGroupByDecodes(t *testing.T) {
	db, want := setupDictTable(t)
	res, err := db.Query("SELECT country, SUM(revenue) AS total FROM sales GROUP BY country ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Top group decodes to the highest-revenue country (DE at 4×10).
	top, err := db.Decode("sales", "country", uint32(res.Rows[0][0]))
	if err != nil {
		t.Fatal(err)
	}
	if top != "DE" || res.Rows[0][1] != want["DE"] {
		t.Fatalf("top group = %s/%v, want DE/%v", top, res.Rows[0][1], want["DE"])
	}
}

func TestCountDistinctThroughCQL(t *testing.T) {
	db, _ := setupDictTable(t)
	res, err := db.Query("SELECT COUNT(DISTINCT country) AS countries FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "countries" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0] != 4 {
		t.Fatalf("distinct countries = %v, want 4", res.Rows[0][0])
	}
	// Per-group distinct with ordering on the aggregate form.
	res, err = db.Query("SELECT ds, COUNT(DISTINCT country) FROM sales GROUP BY ds ORDER BY count_distinct(country) DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1] != 4 {
			t.Fatalf("per-day distinct = %v, want 4", row[1])
		}
	}
}
