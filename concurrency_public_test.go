package cubrick_test

import (
	"sync"
	"testing"
)

// TestConcurrentQueriesThroughProxy runs parallel query traffic through
// the proxy (run with -race): all results must be exact.
func TestConcurrentQueriesThroughProxy(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable("m", demoSchema()); err != nil {
		t.Fatal(err)
	}
	n := 300
	dims := make([][]uint32, n)
	mets := make([][]float64, n)
	var want float64
	for i := 0; i < n; i++ {
		dims[i] = []uint32{uint32(i) % 30, uint32(i) % 20}
		mets[i] = []float64{float64(i)}
		want += float64(i)
	}
	if err := db.Load("m", dims, mets); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perGoroutine = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				res, err := db.Query("SELECT SUM(value) FROM m")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if res.Rows[0][0] != want {
					t.Errorf("sum = %v, want %v", res.Rows[0][0], want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := db.Proxy().Queries.Value(); got != goroutines*perGoroutine {
		t.Fatalf("proxy counted %d queries, want %d", got, goroutines*perGoroutine)
	}
}
