// Package cubrick is the public facade of this repository: a from-scratch
// reproduction of "Interactive Analytic DBMSs: Breaching the Scalability
// Wall" (Pedreira et al., ICDE 2021). It wires together an in-memory
// analytic DBMS with granular partitioning and adaptive compression, a
// general-purpose shard management framework (SM), service discovery, and
// a simulated multi-region fleet — and exposes the partially-sharded
// database a downstream user interacts with: create tables, load rows,
// and run CQL queries through a fault-tolerant proxy.
//
// Quick start:
//
//	db, _ := cubrick.Open(cubrick.Defaults())
//	db.CreateTable("metrics", cubrick.Schema{
//	    Dimensions: []cubrick.Dimension{{Name: "ds", Max: 365, Buckets: 73}},
//	    Metrics:    []cubrick.Metric{{Name: "value"}},
//	})
//	db.Load("metrics", [][]uint32{{1}}, [][]float64{{42}})
//	res, _ := db.Query("SELECT SUM(value) FROM metrics")
package cubrick

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/cql"
	"cubrick/internal/cubrick"
	"cubrick/internal/dict"
	"cubrick/internal/engine"
	"cubrick/internal/proxy"
	"cubrick/internal/randutil"
)

// Schema, Dimension and Metric describe a table's dimensional layout.
// Dimension values are normalized to uint32 by the caller (dictionary
// encoding is the usual approach); each dimension's domain is
// range-partitioned into buckets, which jointly define the table's bricks.
type (
	// Schema is a table schema.
	Schema = brick.Schema
	// Dimension is one dimension column.
	Dimension = brick.Dimension
	// Metric is one metric column.
	Metric = brick.Metric
)

// Config configures an in-process deployment. The zero value is not
// usable; start from Defaults.
type Config struct {
	// Deployment is the underlying multi-region deployment configuration.
	Deployment cubrick.DeploymentConfig
	// Proxy configures the query proxy.
	Proxy proxy.Config
	// Epoch is the simulated start time.
	Epoch time.Time
}

// Defaults returns a three-region deployment configuration suitable for
// examples and tests.
func Defaults() Config {
	return Config{
		Deployment: cubrick.DefaultDeploymentConfig(),
		Epoch:      time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// DB is an open Cubrick deployment: the user-facing handle.
type DB struct {
	dep   *cubrick.Deployment
	proxy *proxy.Proxy

	mu    sync.Mutex
	dicts map[string]*dict.Set // per-table dictionary sets
}

// Open builds a full in-process deployment: fleet, coordination store,
// discovery, Shard Manager, Cubrick nodes and proxy.
func Open(cfg Config) (*DB, error) {
	dep, err := cubrick.Open(cfg.Deployment, cfg.Epoch)
	if err != nil {
		return nil, err
	}
	p := proxy.New(dep, cfg.Proxy, randutil.New(cfg.Deployment.Seed+7919))
	return &DB{dep: dep, proxy: p, dicts: make(map[string]*dict.Set)}, nil
}

// EnableDictionary declares a dimension of a table as dictionary-encoded:
// string labels are assigned dense uint32 ids on ingest (Encode), queries
// may filter with `dim = 'label'` in CQL, and results decode back through
// Decode. The dictionary's capacity is the dimension's value domain.
func (db *DB) EnableDictionary(table, dim string) error {
	info, err := db.dep.Catalog.Table(table)
	if err != nil {
		return err
	}
	i := info.Schema.DimIndex(dim)
	if i < 0 {
		return fmt.Errorf("cubrick: table %s has no dimension %q", table, dim)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	set, ok := db.dicts[table]
	if !ok {
		set = dict.NewSet()
		db.dicts[table] = set
	}
	set.Add(dim, info.Schema.Dimensions[i].Max)
	return nil
}

// dictFor returns the dictionary of a table dimension, or nil.
func (db *DB) dictFor(table, dim string) *dict.Dictionary {
	db.mu.Lock()
	defer db.mu.Unlock()
	set, ok := db.dicts[table]
	if !ok {
		return nil
	}
	return set.Get(dim)
}

// DictVersions reports the version (assigned-id count) of every
// dictionary-encoded dimension of a table — the same numbers the /dict
// wire plane negotiates deltas with, surfaced for observability.
func (db *DB) DictVersions(table string) map[string]uint64 {
	db.mu.Lock()
	set, ok := db.dicts[table]
	db.mu.Unlock()
	if !ok {
		return nil
	}
	return set.Versions()
}

// Encode maps a string label to its dimension id, assigning one on first
// sight (the ingestion path).
func (db *DB) Encode(table, dim, value string) (uint32, error) {
	d := db.dictFor(table, dim)
	if d == nil {
		return 0, fmt.Errorf("cubrick: %s.%s is not dictionary-encoded", table, dim)
	}
	return d.Encode(value)
}

// Decode maps a dimension id back to its string label.
func (db *DB) Decode(table, dim string, id uint32) (string, error) {
	d := db.dictFor(table, dim)
	if d == nil {
		return "", fmt.Errorf("cubrick: %s.%s is not dictionary-encoded", table, dim)
	}
	return d.Decode(id)
}

// resolveStringFilters folds `dim = 'label'` predicates into the numeric
// filter via the table's dictionaries. Unknown labels produce an
// impossible range, so the query returns an empty (not erroneous) result —
// standard DB semantics for filtering on a value that was never ingested.
func (db *DB) resolveStringFilters(table string, q *engine.Query, stringEq map[string]string) error {
	if len(stringEq) == 0 {
		return nil
	}
	if q.Filter == nil {
		q.Filter = make(map[string][2]uint32, len(stringEq))
	}
	for dim, label := range stringEq {
		d := db.dictFor(table, dim)
		if d == nil {
			return fmt.Errorf("cubrick: %s.%s is not dictionary-encoded; use numeric predicates", table, dim)
		}
		id, err := d.Lookup(label)
		if err != nil {
			// Never-seen label: match nothing.
			q.Filter[dim] = [2]uint32{1, 0}
			continue
		}
		q.Filter[dim] = [2]uint32{id, id}
	}
	return nil
}

// Deployment exposes the underlying deployment for advanced use
// (failure injection, SM operations, simulated time).
func (db *DB) Deployment() *cubrick.Deployment { return db.dep }

// Proxy exposes the query proxy (stats, blacklist operations).
func (db *DB) Proxy() *proxy.Proxy { return db.proxy }

// CreateTable registers a table and places its partitions in every region.
func (db *DB) CreateTable(name string, schema Schema) error {
	_, err := db.dep.CreateTable(name, schema)
	return err
}

// DropTable removes a table everywhere.
func (db *DB) DropTable(name string) error { return db.dep.DropTable(name) }

// Tables lists the catalog: name, partition count, version.
func (db *DB) Tables() []cubrick.TableInfo { return db.dep.Catalog.Tables() }

// Load ingests rows: dims[i] are the dimension values and metrics[i] the
// metric values of row i.
func (db *DB) Load(table string, dims [][]uint32, metrics [][]float64) error {
	return db.dep.Load(table, dims, metrics)
}

// Result is a finalized query result with its Cubrick metadata.
type Result = cubrick.QueryResult

// Query parses and executes one CQL SELECT through the proxy, with
// transparent cross-region retries.
func (db *DB) Query(query string) (*Result, error) {
	st, err := cql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*cql.SelectStmt)
	if !ok {
		return nil, errors.New("cubrick: Query only accepts SELECT; use Tables/Describe for metadata")
	}
	if err := db.resolveStringFilters(sel.Table, sel.Query, sel.StringEq); err != nil {
		return nil, err
	}
	if sel.JoinTable != "" {
		return db.proxy.QueryJoin(sel.Table, sel.JoinTable, sel.Query)
	}
	return db.proxy.Query(sel.Table, sel.Query)
}

// CreateReplicatedTable registers a small dimension table replicated in
// full to every host, enabling node-local star joins (see Query with
// "FROM fact JOIN dims").
func (db *DB) CreateReplicatedTable(name string, schema Schema) error {
	_, err := db.dep.CreateReplicatedTable(name, schema)
	return err
}

// LoadReplicated ingests rows into a replicated table on every host.
func (db *DB) LoadReplicated(table string, dims [][]uint32, metrics [][]float64) error {
	return db.dep.LoadReplicated(table, dims, metrics)
}

// QueryStruct executes a programmatically built engine query.
func (db *DB) QueryStruct(table string, q *engine.Query) (*Result, error) {
	return db.proxy.Query(table, q)
}

// Describe returns a table's schema.
func (db *DB) Describe(table string) (Schema, error) {
	info, err := db.dep.Catalog.Table(table)
	if err != nil {
		return Schema{}, err
	}
	return info.Schema, nil
}

// Repartition evaluates the partition policy for a table and re-partitions
// it if needed, returning a human-readable summary.
func (db *DB) Repartition(table string) (string, error) {
	decision, parts, err := db.dep.Repartition(table)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s: %d partitions", decision, parts), nil
}

// Advance moves simulated time forward (heartbeats, migrations and
// discovery propagation all run on simulated time).
func (db *DB) Advance(d time.Duration) {
	db.dep.Clock.Advance(d)
	db.dep.SM.Sweep()
}
