package cubrick_test

import (
	"testing"
	"time"

	cubrick "cubrick"
	"cubrick/internal/engine"
)

func TestQueryStructAndSettle(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable("m", demoSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("m", [][]uint32{{1, 2}, {3, 4}}, [][]float64{{10}, {20}}); err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Aggregates: []engine.Aggregate{{Func: engine.Max, Metric: "value", Alias: "peak"}}}
	res, err := db.QueryStruct("m", q)
	if err != nil || res.Rows[0][0] != 20 {
		t.Fatalf("QueryStruct = %v, %v", res, err)
	}
	// Settle advances simulated time and sweeps heartbeats.
	before := db.Deployment().Clock.Now()
	db.Deployment().Settle()
	if !db.Deployment().Clock.Now().After(before) {
		t.Fatal("Settle did not advance time")
	}
}

func TestFacadeOpenErrors(t *testing.T) {
	cfg := cubrick.Defaults()
	cfg.Deployment.Regions = nil
	if _, err := cubrick.Open(cfg); err == nil {
		t.Fatal("Open with no regions succeeded")
	}
}

func TestFacadeRepartitionErrors(t *testing.T) {
	db := openDB(t)
	if _, err := db.Repartition("ghost"); err == nil {
		t.Fatal("Repartition of unknown table succeeded")
	}
}

func TestAdvanceDrivesHeartbeats(t *testing.T) {
	db := openDB(t)
	db.CreateTable("m", demoSchema())
	// Many TTLs pass; with Advance sweeping and agents beating, nothing
	// should be failed over and the system keeps serving.
	for i := 0; i < 30; i++ {
		db.Advance(10 * time.Second)
	}
	db.Load("m", [][]uint32{{1, 1}}, [][]float64{{1}})
	if _, err := db.Query("SELECT COUNT(*) FROM m"); err != nil {
		t.Fatalf("query after long idle: %v", err)
	}
}
