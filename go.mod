module cubrick

go 1.22
