// Command loadgen drives sustained query traffic against an in-process
// deployment and reports throughput, latency percentiles and retry/failure
// counts — the operational view a Cubrick oncall watches. Failures are
// injected while the load runs, so the report shows the proxy's
// cross-region retries absorbing them.
//
//	loadgen -tables 12 -queries 5000 -kill 3
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cubrick/internal/cluster"
	"cubrick/internal/cubrick"
	"cubrick/internal/engine"
	"cubrick/internal/proxy"
	"cubrick/internal/randutil"
	"cubrick/internal/workload"
)

func main() {
	tables := flag.Int("tables", 12, "tenant tables to create")
	rowsPer := flag.Int("rows", 400, "rows per table")
	queries := flag.Int("queries", 5000, "queries to run")
	kills := flag.Int("kill", 3, "hosts to kill mid-run")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	cfg := cubrick.DefaultDeploymentConfig()
	cfg.RacksPerRegion = 3
	cfg.HostsPerRack = 4
	cfg.Policy.InitialPartitions = 4
	cfg.Seed = *seed
	d, err := cubrick.Open(cfg, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	rnd := randutil.New(*seed + 1)
	schema := workload.StandardSchema()
	gen := workload.NewRowGenerator(schema, rnd.Fork())
	names := make([]string, *tables)
	for i := range names {
		names[i] = fmt.Sprintf("tenant_%02d", i)
		if _, err := d.CreateTable(names[i], schema); err != nil {
			fmt.Fprintln(os.Stderr, "create:", err)
			os.Exit(1)
		}
		if err := d.LoadGenerated(names[i], *rowsPer, gen); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("loaded %d tables × %d rows over %d hosts/region\n", *tables, *rowsPer, len(d.Fleet.Region("east")))

	pxy := proxy.New(d, proxy.Config{}, rnd.Fork())
	mix := rnd.Fork().NewZipf(1.1, uint64(len(names)))
	qrnd := rnd.Fork()
	killAt := 0
	if *kills > 0 {
		killAt = *queries / (*kills + 1)
	}
	killed := 0
	start := time.Now()
	for i := 0; i < *queries; i++ {
		if killAt > 0 && killed < *kills && i > 0 && i%killAt == 0 {
			// Kill in the proxy's preferred region so retries are visible.
			hosts := d.Fleet.Region(cfg.Regions[0])
			victim := hosts[qrnd.Intn(len(hosts))]
			if victim.State() == cluster.Up {
				victim.SetState(cluster.Down)
				killed++
				fmt.Printf("  [t+%s] killed %s (query %d)\n", time.Since(start).Round(time.Millisecond), victim.Name, i)
			}
		}
		// Periodic control-plane work, as the simulator's hourly loop does.
		if i%500 == 0 {
			d.Clock.Advance(30 * time.Second)
			d.SM.Sweep()
		}
		table := names[mix.Next()]
		q := &engine.Query{
			Aggregates: []engine.Aggregate{{Func: engine.Sum, Metric: "value", Alias: "total"}},
			Filter:     map[string][2]uint32{"ds": {0, uint32(qrnd.Intn(364))}},
		}
		pxy.Query(table, q)
	}
	elapsed := time.Since(start)

	snap := pxy.Latency.Snapshot()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\nqueries\t%d in %s (%.0f qps wall)\n", pxy.Queries.Value(), elapsed.Round(time.Millisecond), float64(*queries)/elapsed.Seconds())
	fmt.Fprintf(w, "success\t%.3f%%\n", 100*(1-float64(pxy.Failures.Value())/float64(pxy.Queries.Value())))
	fmt.Fprintf(w, "cross-region retries\t%d\n", pxy.Retries.Value())
	fmt.Fprintf(w, "simulated latency\tp50=%.1fms p90=%.1fms p99=%.1fms p999=%.1fms max=%.1fms\n",
		snap.P50*1000, snap.P90*1000, snap.P99*1000, snap.P999*1000, snap.Max*1000)
	w.Flush()
}
