// Command cubrick-worker runs one networked execution worker: it hosts
// table partitions and executes partial queries over HTTP for a remote
// coordinator (see internal/netexec and examples/distributed).
//
//	cubrick-worker -addr :9001
//
// API: POST /partition, POST /load, POST /loadbin, POST /partial,
// GET /health.
//
// For resilience demos, -chaos-fail-prob injects server-side faults: each
// request fails with the given probability (HTTP 500) before reaching the
// worker, reproducing the chaos tests across real processes. -chaos-seed
// makes the failure stream deterministic.
package main

import (
	"flag"
	"log"
	"net/http"

	"cubrick/internal/netexec"
)

func main() {
	addr := flag.String("addr", ":9001", "listen address")
	chaosFailProb := flag.Float64("chaos-fail-prob", 0, "probability each request fails with HTTP 500 (fault injection; 0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the injected failure stream")
	flag.Parse()
	w := netexec.NewWorker()
	handler := netexec.ChaosHandler(*chaosFailProb, *chaosSeed, w.Handler())
	if *chaosFailProb > 0 {
		log.Printf("cubrick-worker chaos enabled: fail-prob=%g seed=%d", *chaosFailProb, *chaosSeed)
	}
	log.Printf("cubrick-worker listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
