// Command cubrick-worker runs one networked execution worker: it hosts
// table partitions and executes partial queries over HTTP for a remote
// coordinator (see internal/netexec and examples/distributed).
//
//	cubrick-worker -addr :9001
//
// API: POST /partition, POST /load, POST /loadbin, POST /partial,
// GET /health.
//
// Observability: GET /metrics serves counters and latency histograms in
// Prometheus text format (-metrics, on by default; /stats remains as the
// legacy JSON counter alias), GET /debug/trace[/{id}] serves the bounded
// in-memory trace ring (coordinator-propagated trace IDs land here), and
// -slow-query-ms gates a one-line per-stage slow-query log. -pprof mounts
// net/http/pprof under /debug/pprof/. The debug and metrics endpoints
// bypass chaos injection.
//
// For resilience demos, -chaos-fail-prob injects server-side faults: each
// request fails with the given probability (HTTP 500) before reaching the
// worker, reproducing the chaos tests across real processes. -chaos-seed
// makes the failure stream deterministic.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cubrick/internal/admission"
	"cubrick/internal/brick"
	"cubrick/internal/metrics"
	"cubrick/internal/netexec"
	"cubrick/internal/trace"
)

func main() {
	addr := flag.String("addr", ":9001", "listen address")
	enableMetrics := flag.Bool("metrics", true, "serve Prometheus text format on /metrics (and counters on /stats)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "how many traces the /debug/trace ring retains")
	slowQueryMS := flag.Int("slow-query-ms", 500, "log a per-stage breakdown for partials slower than this (0 disables)")
	chaosFailProb := flag.Float64("chaos-fail-prob", 0, "probability each request fails with HTTP 500 (fault injection; 0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the injected failure stream")
	compactInterval := flag.Duration("compact-interval", 0, "background compaction pass interval (0 disables)")
	compactEncodeBelow := flag.Float64("compact-encode-below", 1, "encode raw bricks whose hotness falls below this")
	compactEvictBelow := flag.Float64("compact-evict-below", 0.1, "flate+evict encoded bricks whose hotness falls below this")
	compactPromoteAbove := flag.Float64("compact-promote-above", 0, "promote colder-tier bricks whose hotness rises above this (0 disables)")
	compactDecay := flag.Float64("compact-decay", 0.8, "hotness decay factor applied before each compaction pass (1 disables decay)")
	maxConcurrent := flag.Int("max-concurrent-queries", 0, "cap on concurrently executing partials; excess queries queue (0 disables admission control)")
	queueDepth := flag.Int("queue-depth", 64, "bound on the admission queue; arrivals beyond it are shed with 429")
	fold := flag.String("fold", "on", "shared-scan folding: concurrent queries with equal fold keys share one brick pass (on/off)")
	brickCacheBytes := flag.Int64("brick-cache-bytes", 0, "byte budget for the per-brick partial cache (fold key + ingest epoch keyed; 0 disables)")
	decodedCacheBytes := flag.Int64("decoded-cache-bytes", 0, "byte budget for the decoded-column cache pinning hot compressed bricks (0 disables)")
	migrateRateBytes := flag.Int64("migrate-rate-bytes", 0, "pace /export shard-migration streams to this many bytes per second (0 = unthrottled)")
	dictCapacity := flag.Uint("dict-capacity", 0, "fallback id capacity for global dictionaries created over /dict when the column names no schema dimension (0 = schema-derived only)")
	rollupTimeDim := flag.String("rollup-time-dim", "", "time dimension incremental rollups bucket on (empty disables rollups)")
	rollupBucket := flag.Uint("rollup-bucket", 1, "rollup bucket width in time-dimension values")
	rollupDims := flag.String("rollup-dims", "", "comma-separated dimensions rollups group by (empty = all non-time dimensions)")
	rollupDistinct := flag.String("rollup-distinct", "", "comma-separated dimensions maintained as HLL sketches for COUNT(DISTINCT)")
	flag.Parse()
	if *fold != "on" && *fold != "off" {
		log.Fatalf("cubrick-worker: -fold must be on or off, got %q", *fold)
	}
	w := netexec.NewWorker()
	tracer := trace.New(trace.Config{
		RingSize:           *traceRing,
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
	})
	w.Tracer = tracer
	if *enableMetrics {
		w.Metrics = metrics.NewRegistry()
	}
	w.FoldScans = *fold == "on"
	w.BrickCacheBytes = *brickCacheBytes
	w.DecodedCacheBytes = *decodedCacheBytes
	w.ExportRateBytes = *migrateRateBytes
	w.DictCapacity = uint32(*dictCapacity)
	if *rollupTimeDim != "" {
		w.RollupTimeDim = *rollupTimeDim
		w.RollupBucket = uint32(*rollupBucket)
		w.RollupDims = splitList(*rollupDims)
		w.RollupDistinct = splitList(*rollupDistinct)
		log.Printf("cubrick-worker rollups: time-dim=%s bucket=%d dims=%q distinct=%q",
			w.RollupTimeDim, w.RollupBucket, w.RollupDims, w.RollupDistinct)
	}
	if *migrateRateBytes > 0 {
		log.Printf("cubrick-worker migration export rate: %d bytes/s", *migrateRateBytes)
	}
	if *brickCacheBytes > 0 || *decodedCacheBytes > 0 {
		log.Printf("cubrick-worker caches: brick-cache-bytes=%d decoded-cache-bytes=%d", *brickCacheBytes, *decodedCacheBytes)
	}
	if *maxConcurrent > 0 {
		w.Admission = admission.New(admission.Config{
			MaxConcurrent: *maxConcurrent,
			QueueDepth:    *queueDepth,
			Metrics:       w.Metrics,
		})
		log.Printf("cubrick-worker admission: max-concurrent=%d queue-depth=%d", *maxConcurrent, *queueDepth)
	}
	handler := netexec.ChaosHandler(*chaosFailProb, *chaosSeed, w.Handler())
	// Debug and metrics endpoints mount on the outer mux so chaos-injected
	// 500s never hit the observability plane that diagnoses them.
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/debug/trace", tracer.Handler())
	mux.Handle("/debug/trace/", tracer.Handler())
	if w.Metrics != nil {
		mux.Handle("/metrics", metrics.Handler(w.Metrics))
		mux.HandleFunc("/stats", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]interface{}{
				"counters": w.Metrics.CounterValues(),
			})
		})
	}
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if *chaosFailProb > 0 {
		log.Printf("cubrick-worker chaos enabled: fail-prob=%g seed=%d", *chaosFailProb, *chaosSeed)
	}
	if *compactInterval > 0 {
		cfg := brick.CompactionConfig{
			EncodeBelow:  *compactEncodeBelow,
			EvictBelow:   *compactEvictBelow,
			PromoteAbove: *compactPromoteAbove,
		}
		log.Printf("cubrick-worker compactor: interval=%s encode-below=%g evict-below=%g promote-above=%g decay=%g",
			*compactInterval, cfg.EncodeBelow, cfg.EvictBelow, cfg.PromoteAbove, *compactDecay)
		decay := *compactDecay
		go func() {
			t := time.NewTicker(*compactInterval)
			defer t.Stop()
			for range t.C {
				if decay < 1 {
					w.DecayHotness(decay)
				}
				if _, err := w.CompactAll(cfg); err != nil {
					log.Printf("cubrick-worker compaction: %v", err)
				}
			}
		}()
	}
	log.Printf("cubrick-worker listening on %s (metrics=%v pprof=%v slow-query-ms=%d fold=%s)",
		*addr, *enableMetrics, *enablePprof, *slowQueryMS, *fold)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// splitList parses a comma-separated flag value into its non-empty,
// space-trimmed elements.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
