// Command cubrick-worker runs one networked execution worker: it hosts
// table partitions and executes partial queries over HTTP for a remote
// coordinator (see internal/netexec and examples/distributed).
//
//	cubrick-worker -addr :9001
//
// API: POST /partition, POST /load, POST /loadbin, POST /partial,
// GET /health.
package main

import (
	"flag"
	"log"
	"net/http"

	"cubrick/internal/netexec"
)

func main() {
	addr := flag.String("addr", ":9001", "listen address")
	flag.Parse()
	w := netexec.NewWorker()
	log.Printf("cubrick-worker listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, w.Handler()))
}
