// Command experiments regenerates every table and figure of the paper's
// evaluation. Each subcommand prints the series the paper plots; `all`
// runs everything.
//
// Usage:
//
//	experiments fig1|fig2|tables|fig4a|fig4b|fig4c|fig4d|fig4e|fig4f|fig5|all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"cubrick/internal/core"
	"cubrick/internal/randutil"
	"cubrick/internal/sim"
	"cubrick/internal/wall"
)

var quick = flag.Bool("quick", false, "run smaller configurations")

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] fig1|fig2|tables|fig4a|fig4b|fig4c|fig4d|fig4e|fig4f|fig5|all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := strings.ToLower(flag.Arg(0))
	cmds := map[string]func(){
		"fig1": fig1, "fig2": fig2, "tables": tables,
		"fig4a": fig4a, "fig4b": fig4b, "fig4c": fig4c,
		"fig4d": fig4d, "fig4e": fig4e, "fig4f": fig4f,
		"fig5": fig5, "strategies": strategies,
	}
	if cmd == "all" {
		for _, name := range []string{"fig1", "fig2", "tables", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig5", "strategies"} {
			fmt.Printf("==== %s ====\n", name)
			cmds[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := cmds[cmd]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	fn()
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// fig1: query success ratio vs nodes visited; p=0.01%, 99% SLA.
func fig1() {
	curve, wallAt := wall.PaperFig1()
	fmt.Printf("Fig 1: success ratio vs fan-out (p=0.01%%); 99%% SLA wall at %d servers\n", wallAt)
	w := newTab()
	fmt.Fprintln(w, "nodes\tsuccess_ratio")
	for _, pt := range curve {
		if pt.Nodes == 1 || pt.Nodes%100 == 0 {
			fmt.Fprintf(w, "%d\t%.4f\n", pt.Nodes, pt.Success)
		}
	}
	w.Flush()
}

// fig2: success curves for several failure probabilities.
func fig2() {
	fmt.Println("Fig 2: success ratio vs fan-out for several per-server failure probabilities")
	w := newTab()
	fmt.Fprint(w, "nodes")
	for _, p := range wall.PaperFig2Probabilities {
		fmt.Fprintf(w, "\tp=%g", p)
	}
	fmt.Fprintln(w)
	for n := 1; n <= 10000; n *= 10 {
		fmt.Fprintf(w, "%d", n)
		for _, p := range wall.PaperFig2Probabilities {
			fmt.Fprintf(w, "\t%.4f", wall.SuccessRatio(p, n))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	for _, p := range wall.PaperFig2Probabilities {
		if n, err := wall.Crossing(p, 0.99); err == nil {
			fmt.Printf("wall (99%% SLA) at p=%g: %d servers\n", p, n)
		}
	}
}

// tables: the §IV-A shard-mapping worked examples.
func tables() {
	fmt.Println("§IV-A mapping tables (maxShards=100000)")
	naive := core.NaiveMapper{MaxShards: 100000}
	mono := core.MonotonicMapper{MaxShards: 100000}
	for _, table := range []string{"dim_users", "test_table"} {
		w := newTab()
		fmt.Fprintln(w, "table name\tnaive hash\tmonotonic (production)")
		for p := 0; p < 4; p++ {
			fmt.Fprintf(w, "%s\t%d\t%d\n", core.PartitionName(table, p), naive.Shard(table, p), mono.Shard(table, p))
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Println("monotonic mapping assigns consecutive shards: no same-table collisions (§IV-A)")
}

func fig4a() {
	cfg := sim.DefaultCollisionConfig()
	if *quick {
		cfg.Tables, cfg.Hosts = 1000, 200
	}
	rep := sim.Collisions(cfg)
	fmt.Printf("Fig 4a: collision frequencies over %d tables on %d hosts (%d shards)\n", cfg.Tables, cfg.Hosts, cfg.MaxShards)
	w := newTab()
	fmt.Fprintln(w, "collision class\ttables\tfraction")
	fmt.Fprintf(w, "shard collision (same table, same host)\t%d\t%.1f%%\n", rep.TablesWithShardCollision, rep.FracShardCollision()*100)
	fmt.Fprintf(w, "partition collision (different tables, same shard)\t%d\t%.1f%%\n", rep.TablesWithCrossPartitionCollision, rep.FracCrossPartition()*100)
	fmt.Fprintf(w, "partition collision (same table, same shard)\t%d\t%.1f%%\n", rep.TablesWithSamePartitionCollision, rep.FracSamePartition()*100)
	w.Flush()
}

func fig4b() {
	n := 10000
	if *quick {
		n = 2000
	}
	hist := sim.PartitionsHistogram(n, 1)
	fmt.Printf("Fig 4b: partitions per table over %d tables\n", n)
	w := newTab()
	fmt.Fprintln(w, "partitions\ttables\tfraction")
	for _, k := range sim.SortedKeys(hist) {
		fmt.Fprintf(w, "%d\t%d\t%.2f%%\n", k, hist[k], float64(hist[k])/float64(n)*100)
	}
	w.Flush()
}

func fig4c() {
	n := 2000
	if *quick {
		n = 300
	}
	dist := sim.PropagationDelays(n, 1)
	fmt.Printf("Fig 4c: discovery propagation delay over %d publishes\n", n)
	w := newTab()
	fmt.Fprintln(w, "quantile\tdelay_seconds")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		fmt.Fprintf(w, "p%g\t%.2f\n", q*100, dist.Quantile(q))
	}
	w.Flush()
}

// weekReport memoizes the week simulation: fig4d, fig4e and fig4f all read
// from the same simulated week (as the paper's panels do).
var weekReport *sim.WeekReport

func runWeek() *sim.WeekReport {
	if weekReport != nil {
		return weekReport
	}
	cfg := sim.DefaultWeekConfig()
	if *quick {
		cfg.Days = 2
		cfg.Tables = 8
		cfg.RowsPerTable = 100
		cfg.QueriesPerHour = 12
	}
	rep, err := sim.RunWeek(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "week simulation failed:", err)
		os.Exit(1)
	}
	weekReport = rep
	return rep
}

func fig4d() {
	rep := runWeek()
	fmt.Println("Fig 4d: shard migrations per simulated day")
	w := newTab()
	fmt.Fprintln(w, "day\tmigrations")
	for i, m := range rep.MigrationsPerDay {
		fmt.Fprintf(w, "%d\t%.0f\n", i+1, m)
	}
	w.Flush()
	fmt.Printf("live=%d failover=%d; query success %.2f%% (retried %d)\n",
		rep.LiveMigrations, rep.FailoverMigrations, rep.QuerySuccessRatio*100, rep.RetriedQueries)
}

func fig4e() {
	rep := runWeek()
	fmt.Println("Fig 4e: hot/cold data blocks after a simulated period")
	w := newTab()
	fmt.Fprintln(w, "population\tbricks")
	fmt.Fprintf(w, "hot (hotness ≥ 1)\t%d\n", rep.HotBricks)
	fmt.Fprintf(w, "cold (hotness < 1)\t%d\n", rep.ColdBricks)
	w.Flush()
	fmt.Printf("hotness p50=%.2f p99=%.2f\n", rep.HotnessP50, rep.HotnessP99)
}

func fig4f() {
	rep := runWeek()
	fmt.Println("Fig 4f: hosts sent to repair per simulated day (permanent failures)")
	w := newTab()
	fmt.Fprintln(w, "day\trepairs")
	for i, r := range rep.RepairsPerDay {
		fmt.Fprintf(w, "%d\t%.0f\n", i+1, r)
	}
	w.Flush()
}

// strategies reproduces the §IV-C comparison: the four coordinator
// selection strategies, their coordinator-load imbalance and per-query
// overheads. Cubrick's production choice is strategy 4 (cached random).
func strategies() {
	const parts = 8
	const queries = 50000
	fmt.Println("§IV-C coordinator selection strategies (8-partition table)")
	w := newTab()
	fmt.Fprintln(w, "strategy\tcoordinator imbalance (max/mean)\textra hops/query\textra roundtrips/query")
	rnd := randutil.New(1)
	for _, strat := range []core.CoordinatorStrategy{
		core.AlwaysPartitionZero, core.ForwardFromZero, core.LookupThenRandom, core.CachedRandom,
	} {
		trips := 0
		picker := &core.Picker{
			Strategy: strat,
			Cache:    core.NewPartitionCountCache(),
			Rand:     rnd.Float64,
			LookupPartitions: func(string) (int, error) {
				trips++
				return parts, nil
			},
		}
		counts := make([]int, parts)
		hops := 0
		for q := 0; q < queries; q++ {
			p, cost, err := picker.Pick("t")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			counts[p]++
			hops += cost.ExtraHops
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%.5f\n",
			strat, float64(max)/(float64(queries)/parts),
			float64(hops)/queries, float64(trips)/queries)
	}
	w.Flush()
	fmt.Println("production uses cached-random: balanced, no extra hops, ~0 extra roundtrips (§IV-C)")
}

func fig5() {
	cfg := sim.DefaultFanoutConfig()
	if *quick {
		cfg.QueriesPerLevel = 20000
	}
	series := sim.FanoutExperiment(cfg)
	fmt.Printf("Fig 5: query latency by fan-out level (%d queries per level)\n", cfg.QueriesPerLevel)
	w := newTab()
	fmt.Fprintln(w, "fanout\tp50_ms\tp90_ms\tp99_ms\tp999_ms\tmax_ms\tsuccess")
	for _, s := range series {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f%%\n",
			s.Fanout, s.Latency.P50*1000, s.Latency.P90*1000, s.Latency.P99*1000,
			s.Latency.P999*1000, s.Latency.Max*1000, s.SuccessRatio*100)
	}
	w.Flush()
}
