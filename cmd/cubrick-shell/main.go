// Command cubrick-shell is an interactive CQL shell over an in-process
// demo deployment: three regions, a demo table pre-loaded with synthetic
// data, and the full proxy/SM/discovery stack underneath.
//
//	$ go run ./cmd/cubrick-shell
//	cubrick> SELECT region, SUM(value) FROM demo GROUP BY region LIMIT 5
//
// Meta statements: SHOW TABLES, DESCRIBE <table>, plus shell commands
// \stats, \advance <duration>, \quit.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	cubrick "cubrick"
	"cubrick/internal/cql"
	"cubrick/internal/randutil"
	"cubrick/internal/workload"
)

func main() {
	db, err := openDemo()
	if err != nil {
		fmt.Fprintln(os.Stderr, "failed to open demo deployment:", err)
		os.Exit(1)
	}
	fmt.Println("Cubrick demo shell — table `demo` is pre-loaded; try:")
	fmt.Println("  SELECT region, SUM(value) AS total FROM demo GROUP BY region ORDER BY total DESC LIMIT 5")
	fmt.Println("  SHOW TABLES   DESCRIBE demo   \\stats   \\advance 1m   \\quit")
	repl(db, os.Stdin, os.Stdout, true)
}

// repl reads statements from in and writes results to out; prompt controls
// the interactive "cubrick> " prefix.
func repl(db *cubrick.DB, in io.Reader, out io.Writer, prompt bool) {
	sc := bufio.NewScanner(in)
	for {
		if prompt {
			fmt.Fprint(out, "cubrick> ")
		}
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if shellCommand(db, line, out) {
				return
			}
			continue
		}
		runStatement(db, line, out)
	}
}

func openDemo() (*cubrick.DB, error) {
	cfg := cubrick.Defaults()
	db, err := cubrick.Open(cfg)
	if err != nil {
		return nil, err
	}
	schema := workload.StandardSchema()
	if err := db.CreateTable("demo", schema); err != nil {
		return nil, err
	}
	gen := workload.NewRowGenerator(schema, randutil.New(42))
	dims := make([][]uint32, 5000)
	metrics := make([][]float64, 5000)
	for i := range dims {
		dims[i], metrics[i] = gen.Next()
	}
	return db, db.Load("demo", dims, metrics)
}

// shellCommand handles backslash commands; returns true to quit.
func shellCommand(db *cubrick.DB, line string, out io.Writer) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\stats":
		p := db.Proxy()
		fmt.Fprintf(out, "queries=%d retries=%d failures=%d rejections=%d\n",
			p.Queries.Value(), p.Retries.Value(), p.Failures.Value(), p.Rejections.Value())
		s := p.Latency.Snapshot()
		fmt.Fprintf(out, "latency p50=%.1fms p99=%.1fms max=%.1fms over %d queries\n",
			s.P50*1000, s.P99*1000, s.Max*1000, s.Count)
	case "\\advance":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\advance <duration>, e.g. \\advance 1m")
			return false
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			fmt.Fprintln(out, "bad duration:", err)
			return false
		}
		db.Advance(d)
		fmt.Fprintln(out, "advanced simulated time by", d)
	default:
		fmt.Fprintln(out, "unknown command; available: \\stats \\advance \\quit")
	}
	return false
}

func runStatement(db *cubrick.DB, line string, out io.Writer) {
	st, err := cql.Parse(line)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	switch st := st.(type) {
	case *cql.ShowTablesStmt:
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "table\tpartitions\tversion\treplicated")
		for _, ti := range db.Tables() {
			fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", ti.Name, ti.Partitions, ti.Version, ti.Replicated)
		}
		w.Flush()
	case *cql.DescribeStmt:
		schema, err := db.Describe(st.Table)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "column\tkind\tdomain\tbuckets")
		for _, d := range schema.Dimensions {
			fmt.Fprintf(w, "%s\tdimension\t[0,%d)\t%d\n", d.Name, d.Max, d.Buckets)
		}
		for _, m := range schema.Metrics {
			fmt.Fprintf(w, "%s\tmetric\tfloat64\t-\n", m.Name)
		}
		w.Flush()
	case *cql.SelectStmt:
		start := time.Now()
		res, err := db.Query(line)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		printResult(res, out)
		fmt.Fprintf(out, "(%d rows; scanned %d; fan-out %d; region %s; simulated latency %s; wall %s)\n",
			len(res.Rows), res.RowsScanned, res.Fanout, res.Region,
			res.Latency.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	}
}

func printResult(res *cubrick.Result, out io.Writer) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = trimFloat(v)
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	w.Flush()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
