package main

import (
	"bytes"
	"strings"
	"testing"
)

func run(t *testing.T, script string) string {
	t.Helper()
	db, err := openDemo()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	repl(db, strings.NewReader(script), &out, false)
	return out.String()
}

func TestShellSelect(t *testing.T) {
	out := run(t, "SELECT COUNT(*) AS n FROM demo\n\\quit\n")
	if !strings.Contains(out, "5000") {
		t.Fatalf("expected row count in output, got:\n%s", out)
	}
	if !strings.Contains(out, "fan-out") {
		t.Fatalf("missing metadata footer:\n%s", out)
	}
}

func TestShellShowAndDescribe(t *testing.T) {
	out := run(t, "SHOW TABLES\nDESCRIBE demo\n\\quit\n")
	if !strings.Contains(out, "demo") || !strings.Contains(out, "partitions") {
		t.Fatalf("SHOW TABLES output:\n%s", out)
	}
	if !strings.Contains(out, "dimension") || !strings.Contains(out, "metric") {
		t.Fatalf("DESCRIBE output:\n%s", out)
	}
}

func TestShellErrorsAndCommands(t *testing.T) {
	out := run(t, strings.Join([]string{
		"garbage statement",
		"SELECT COUNT(*) FROM ghost",
		"\\stats",
		"\\advance 1m",
		"\\advance nope",
		"\\advance",
		"\\bogus",
		"",
		"\\quit",
	}, "\n")+"\n")
	for _, want := range []string{
		"error:",             // parse + unknown table errors
		"queries=",           // \stats
		"advanced simulated", // \advance 1m
		"bad duration",       // \advance nope
		"usage: \\advance",   // \advance
		"unknown command",    // \bogus
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestShellEOFExits(t *testing.T) {
	out := run(t, "SELECT COUNT(*) FROM demo\n") // no \quit: EOF ends repl
	if !strings.Contains(out, "count(*)") {
		t.Fatalf("query did not run before EOF:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" || trimFloat(2.5) != "2.500" {
		t.Fatal("trimFloat formatting broken")
	}
}
