package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	cubrick "cubrick"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	cfg := cubrick.Defaults()
	cfg.Deployment.Transport.RequestFailureProb = 0
	db, err := cubrick.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &server{db: db}
}

func postJSON(t *testing.T, handler http.HandlerFunc, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	handler(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON response %q: %v", w.Body.String(), err)
	}
}

func createDemoTable(t *testing.T, s *server) {
	t.Helper()
	w := postJSON(t, s.tables, "/tables", map[string]interface{}{
		"name": "metrics",
		"schema": map[string]interface{}{
			"dimensions": []map[string]interface{}{
				{"name": "ds", "max": 30, "buckets": 6},
				{"name": "app", "max": 20, "buckets": 4},
			},
			"metrics": []map[string]interface{}{{"name": "value"}},
		},
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("create table: %d %s", w.Code, w.Body)
	}
}

func TestServerCreateLoadQuery(t *testing.T) {
	s := newTestServer(t)
	createDemoTable(t, s)

	// Load rows.
	rows := make([]map[string]interface{}, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, map[string]interface{}{
			"dims":    []uint32{uint32(i) % 30, uint32(i) % 20},
			"metrics": []float64{float64(i)},
		})
	}
	w := postJSON(t, s.load, "/load", map[string]interface{}{"table": "metrics", "rows": rows})
	if w.Code != http.StatusOK {
		t.Fatalf("load: %d %s", w.Code, w.Body)
	}
	var loadResp map[string]int
	decode(t, w, &loadResp)
	if loadResp["loaded"] != 100 {
		t.Fatalf("loaded = %d", loadResp["loaded"])
	}

	// Query.
	w = postJSON(t, s.query, "/query", map[string]string{
		"cql": "SELECT SUM(value) AS total FROM metrics",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	var qResp struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
		Fanout  int         `json:"fanout"`
		Region  string      `json:"region"`
	}
	decode(t, w, &qResp)
	if len(qResp.Rows) != 1 || qResp.Rows[0][0] != 4950 {
		t.Fatalf("query result = %+v", qResp)
	}
	if qResp.Fanout < 1 || qResp.Region == "" {
		t.Fatalf("metadata missing: %+v", qResp)
	}

	// List tables.
	req := httptest.NewRequest(http.MethodGet, "/tables", nil)
	rec := httptest.NewRecorder()
	s.tables(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("list tables: %d", rec.Code)
	}
	var tables []map[string]interface{}
	decode(t, rec, &tables)
	if len(tables) != 1 {
		t.Fatalf("tables = %v", tables)
	}

	// Stats.
	req = httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec = httptest.NewRecorder()
	s.stats(rec, req)
	var stats map[string]interface{}
	decode(t, rec, &stats)
	if stats["queries"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestServerErrorPaths(t *testing.T) {
	s := newTestServer(t)
	// Bad JSON.
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte("{")))
	w := httptest.NewRecorder()
	s.query(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", w.Code)
	}
	// Bad CQL.
	w = postJSON(t, s.query, "/query", map[string]string{"cql": "garbage"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad CQL: %d", w.Code)
	}
	// Unknown table.
	w = postJSON(t, s.query, "/query", map[string]string{"cql": "SELECT COUNT(*) FROM ghost"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown table: %d", w.Code)
	}
	// Duplicate table creation.
	createDemoTable(t, s)
	w = postJSON(t, s.tables, "/tables", map[string]interface{}{
		"name": "metrics",
		"schema": map[string]interface{}{
			"dimensions": []map[string]interface{}{{"name": "ds", "max": 30, "buckets": 6}},
		},
	})
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	// Load into unknown table.
	w = postJSON(t, s.load, "/load", map[string]interface{}{"table": "ghost", "rows": []interface{}{}})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("load unknown: %d", w.Code)
	}
	// Wrong methods.
	req = httptest.NewRequest(http.MethodDelete, "/query", nil)
	w2 := httptest.NewRecorder()
	s.query(w2, req)
	if w2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method: %d", w2.Code)
	}
}
