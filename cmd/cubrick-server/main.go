// Command cubrick-server exposes an in-process Cubrick deployment over
// HTTP/JSON — the shape of the paper's proxy tier: clients submit queries
// to a stateless front end, which routes them into the partially-sharded
// cluster with transparent retries.
//
// Endpoints:
//
//	POST /tables          {"name": ..., "schema": {...}}   create a table
//	POST /load            {"table": ..., "rows": [...]}    ingest rows
//	POST /query           {"cql": "SELECT ..."}            run a query
//	GET  /tables                                           list tables
//	GET  /stats                                            proxy stats
//
// Run: go run ./cmd/cubrick-server -addr :8080
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	cubrick "cubrick"
	"cubrick/internal/admission"
	"cubrick/internal/brick"
)

type server struct {
	db *cubrick.DB
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	compactInterval := flag.Duration("compact-interval", 0, "background compaction pass interval (0 disables)")
	compactEncodeBelow := flag.Float64("compact-encode-below", 1, "encode raw bricks whose hotness falls below this")
	compactEvictBelow := flag.Float64("compact-evict-below", 0.1, "flate+evict encoded bricks whose hotness falls below this")
	compactPromoteAbove := flag.Float64("compact-promote-above", 0, "promote colder-tier bricks whose hotness rises above this (0 disables)")
	maxConcurrent := flag.Int("max-concurrent-queries", 0, "per-node cap on concurrently executing partials; excess queries queue (0 disables admission control)")
	queueDepth := flag.Int("queue-depth", 64, "bound on each node's admission queue; arrivals beyond it are shed")
	fold := flag.String("fold", "on", "shared-scan folding: concurrent queries with equal fold keys share one brick pass (on/off)")
	brickCacheBytes := flag.Int64("brick-cache-bytes", 0, "per-node byte budget for the per-brick partial cache (fold key + ingest epoch keyed; 0 disables)")
	decodedCacheBytes := flag.Int64("decoded-cache-bytes", 0, "per-node byte budget for the decoded-column cache pinning hot compressed bricks (0 disables)")
	dualReadWindow := flag.Duration("dual-read-window", 0, "how long a migrated shard's old copy keeps serving after a move (the in-process deployment's discovery propagation wait; 0 keeps the default)")
	rollupTimeDim := flag.String("rollup-time-dim", "", "time dimension incremental rollups bucket on (empty disables rollups)")
	rollupBucket := flag.Uint("rollup-bucket", 1, "rollup bucket width in time-dimension values")
	rollupDims := flag.String("rollup-dims", "", "comma-separated dimensions rollups group by (empty = all non-time dimensions)")
	rollupDistinct := flag.String("rollup-distinct", "", "comma-separated dimensions maintained as HLL sketches for COUNT(DISTINCT)")
	flag.Parse()
	if *fold != "on" && *fold != "off" {
		log.Fatalf("cubrick-server: -fold must be on or off, got %q", *fold)
	}

	cfg := cubrick.Defaults()
	if *dualReadWindow > 0 {
		// In the in-process deployment the dual-read window IS the §IV-E
		// propagation wait: the old replica keeps its data (and keeps
		// answering) until the window elapses, then the delayed drop fires.
		cfg.Deployment.PropagationWait = *dualReadWindow
		log.Printf("cubrick-server migration dual-read window: %s", *dualReadWindow)
	}
	if *rollupTimeDim != "" {
		cfg.Deployment.Node.RollupTimeDim = *rollupTimeDim
		cfg.Deployment.Node.RollupBucket = uint32(*rollupBucket)
		cfg.Deployment.Node.RollupDims = splitList(*rollupDims)
		cfg.Deployment.Node.RollupDistinct = splitList(*rollupDistinct)
		log.Printf("cubrick-server rollups: time-dim=%s bucket=%d dims=%q distinct=%q",
			*rollupTimeDim, *rollupBucket, cfg.Deployment.Node.RollupDims, cfg.Deployment.Node.RollupDistinct)
	}
	db, err := cubrick.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open deployment:", err)
		os.Exit(1)
	}
	for _, n := range db.Deployment().Nodes() {
		n.SetFoldScans(*fold == "on")
		if *brickCacheBytes > 0 || *decodedCacheBytes > 0 {
			n.SetCacheBudgets(*brickCacheBytes, *decodedCacheBytes)
		}
		if *maxConcurrent > 0 {
			n.SetAdmission(admission.New(admission.Config{
				MaxConcurrent: *maxConcurrent,
				QueueDepth:    *queueDepth,
			}))
		}
	}
	if *brickCacheBytes > 0 || *decodedCacheBytes > 0 {
		log.Printf("cubrick-server caches: per-node brick-cache-bytes=%d decoded-cache-bytes=%d", *brickCacheBytes, *decodedCacheBytes)
	}
	if *maxConcurrent > 0 {
		log.Printf("cubrick-server admission: per-node max-concurrent=%d queue-depth=%d", *maxConcurrent, *queueDepth)
	}
	if *compactInterval > 0 {
		cfg := brick.CompactionConfig{
			EncodeBelow:  *compactEncodeBelow,
			EvictBelow:   *compactEvictBelow,
			PromoteAbove: *compactPromoteAbove,
		}
		log.Printf("cubrick-server compactor: interval=%s encode-below=%g evict-below=%g promote-above=%g",
			*compactInterval, cfg.EncodeBelow, cfg.EvictBelow, cfg.PromoteAbove)
		go func() {
			t := time.NewTicker(*compactInterval)
			defer t.Stop()
			for range t.C {
				for _, n := range db.Deployment().Nodes() {
					n.DecayHotness()
					if _, err := n.Compact(cfg); err != nil {
						log.Printf("cubrick-server compaction: %v", err)
					}
				}
			}
		}()
	}
	s := &server{db: db}
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", s.tables)
	mux.HandleFunc("/load", s.load)
	mux.HandleFunc("/query", s.query)
	mux.HandleFunc("/stats", s.stats)
	log.Printf("cubrick-server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type schemaJSON struct {
	Dimensions []struct {
		Name    string `json:"name"`
		Max     uint32 `json:"max"`
		Buckets uint32 `json:"buckets"`
	} `json:"dimensions"`
	Metrics []struct {
		Name string `json:"name"`
	} `json:"metrics"`
}

func (sj schemaJSON) toSchema() cubrick.Schema {
	var s cubrick.Schema
	for _, d := range sj.Dimensions {
		s.Dimensions = append(s.Dimensions, cubrick.Dimension{Name: d.Name, Max: d.Max, Buckets: d.Buckets})
	}
	for _, m := range sj.Metrics {
		s.Metrics = append(s.Metrics, cubrick.Metric{Name: m.Name})
	}
	return s
}

func (s *server) tables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.db.Tables())
	case http.MethodPost:
		var req struct {
			Name   string     `json:"name"`
			Schema schemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.db.CreateTable(req.Name, req.Schema.toSchema()); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

type rowJSON struct {
	Dims    []uint32  `json:"dims"`
	Metrics []float64 `json:"metrics"`
}

func (s *server) load(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Table string    `json:"table"`
		Rows  []rowJSON `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dims := make([][]uint32, len(req.Rows))
	metrics := make([][]float64, len(req.Rows))
	for i, row := range req.Rows {
		dims[i], metrics[i] = row.Dims, row.Metrics
	}
	if err := s.db.Load(req.Table, dims, metrics); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Rows)})
}

func (s *server) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		CQL string `json:"cql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.db.Query(req.CQL)
	if err != nil {
		if errors.Is(err, admission.ErrQueueFull) {
			// Shed by admission control: 429 tells clients to back off
			// and retry, mirroring the worker/coordinator behaviour.
			writeErr(w, http.StatusTooManyRequests, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"columns":     res.Columns,
		"rows":        res.Rows,
		"partitions":  res.Partitions,
		"region":      res.Region,
		"fanout":      res.Fanout,
		"latency_ms":  float64(res.Latency.Microseconds()) / 1000,
		"rowsScanned": res.RowsScanned,
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	p := s.db.Proxy()
	snap := p.Latency.Snapshot()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"queries":    p.Queries.Value(),
		"retries":    p.Retries.Value(),
		"failures":   p.Failures.Value(),
		"rejections": p.Rejections.Value(),
		"latency": map[string]float64{
			"p50_ms": snap.P50 * 1000, "p99_ms": snap.P99 * 1000, "max_ms": snap.Max * 1000,
		},
	})
}

// splitList parses a comma-separated flag value into its non-empty,
// space-trimmed elements.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
