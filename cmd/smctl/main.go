// Command smctl demonstrates Shard Manager operations on a simulated
// deployment: it builds a three-region Cubrick cluster with tenant tables,
// then runs the requested control-plane scenario and prints the resulting
// shard placements and migration log — the view SM's management consoles
// give operators (§IV).
//
// Scenarios:
//
//	placements     show shard→host placements per region
//	drain          drain a host and show where its shards went
//	failover       kill a host, let heartbeats lapse, show failovers
//	balance        skew load and run the balancer
//	resize         add a host, balance onto it, then decommission another
//	move           ask the balancer to plan one move, execute it, observe it
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cubrick/internal/cluster"
	"cubrick/internal/cubrick"
	"cubrick/internal/randutil"
	"cubrick/internal/shardmgr"
	"cubrick/internal/workload"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: smctl placements|drain|failover|balance|resize|move")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	d, tables := buildDemo()
	var migrations []shardmgr.MigrationEvent
	d.SM.OnMigration(func(ev shardmgr.MigrationEvent) { migrations = append(migrations, ev) })

	switch flag.Arg(0) {
	case "placements":
		printPlacements(d, tables)
	case "drain":
		host := d.Fleet.Region("east")[0]
		shards, _ := d.SM.ShardsOn(cubrick.ServiceName("east"), host.Name)
		fmt.Printf("draining %s (%d shards)\n", host.Name, len(shards))
		moved, err := d.SM.DrainServer(cubrick.ServiceName("east"), host.Name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drain failed:", err)
			os.Exit(1)
		}
		fmt.Printf("moved %d shards\n", moved)
		printMigrations(migrations)
	case "failover":
		host := d.Fleet.Region("east")[0]
		fmt.Printf("killing %s; waiting for heartbeat TTL...\n", host.Name)
		host.SetState(cluster.Down)
		for i := 0; i < 20; i++ {
			d.Clock.Advance(10 * time.Second)
			d.SM.Sweep()
		}
		printMigrations(migrations)
	case "balance":
		svc := cubrick.ServiceName("east")
		// Skew: make one host's shards 100x heavier.
		victim := d.Fleet.Region("east")[0].Name
		shards, _ := d.SM.ShardsOn(svc, victim)
		for _, sh := range shards {
			d.SM.SetShardLoad(svc, sh, 100<<20)
		}
		moved, err := d.SM.BalanceOnce(svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "balance failed:", err)
			os.Exit(1)
		}
		fmt.Printf("balancer moved %d shards off %s\n", moved, victim)
		printMigrations(migrations)
	case "resize":
		// Scale out: new host joins empty, the balancer shifts load onto
		// it (§II-C "cluster resize"); then scale in: decommission a host
		// via a graceful drain (§IV-G).
		node, err := d.AddHost("east", "east-rNew", "east-rNew-h0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "add host:", err)
			os.Exit(1)
		}
		svc := cubrick.ServiceName("east")
		d.SM.CollectMetrics(svc)
		moved, _ := d.SM.BalanceOnce(svc)
		d.Clock.Advance(time.Minute)
		fmt.Printf("added %s; balancer ran %d migrations; new host now holds %d shards\n",
			node.Host().Name, moved, len(node.Shards()))
		victim := d.Fleet.Region("east")[0].Name
		if err := d.RemoveHost(victim); err != nil {
			fmt.Fprintln(os.Stderr, "remove host:", err)
			os.Exit(1)
		}
		fmt.Printf("decommissioned %s via graceful drain\n", victim)
		printMigrations(migrations)
	case "move":
		// The balancer brain proposes the single best move; the graceful
		// migration executes it. This is the control-plane trigger the HTTP
		// data plane's /move endpoint mirrors (internal/migrate).
		svc := cubrick.ServiceName("east")
		victim := d.Fleet.Region("east")[0].Name
		shards, _ := d.SM.ShardsOn(svc, victim)
		for _, sh := range shards {
			d.SM.SetShardLoad(svc, sh, 100<<20)
		}
		d.SM.CollectMetrics(svc)
		shard, from, to, ok, err := d.SM.PlanMove(svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plan move:", err)
			os.Exit(1)
		}
		if !ok {
			fmt.Println("balancer reports the service is already balanced; no move planned")
			return
		}
		fmt.Printf("planned move: shard %d from %s to %s\n", shard, from, to)
		if err := d.SM.MigrateShard(svc, shard, from, to); err != nil {
			fmt.Fprintln(os.Stderr, "migrate:", err)
			os.Exit(1)
		}
		d.Clock.Advance(time.Minute) // let discovery propagate and the delayed drop fire
		a, err := d.SM.Assignment(svc, shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "assignment after move:", err)
			os.Exit(1)
		}
		fmt.Printf("shard %d now on %s\n", shard, a.Primary())
		printMigrations(migrations)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildDemo() (*cubrick.Deployment, []string) {
	cfg := cubrick.DefaultDeploymentConfig()
	cfg.Policy.InitialPartitions = 4
	d, err := cubrick.Open(cfg, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		fmt.Fprintln(os.Stderr, "open deployment:", err)
		os.Exit(1)
	}
	schema := workload.StandardSchema()
	gen := workload.NewRowGenerator(schema, randutil.New(1))
	tables := []string{"ads_metrics", "growth_funnels", "infra_counters"}
	for _, tbl := range tables {
		if _, err := d.CreateTable(tbl, schema); err != nil {
			fmt.Fprintln(os.Stderr, "create table:", err)
			os.Exit(1)
		}
		if err := d.LoadGenerated(tbl, 200, gen); err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	}
	return d, tables
}

func printPlacements(d *cubrick.Deployment, tables []string) {
	for _, region := range d.Config.Regions {
		fmt.Printf("-- region %s (service %s)\n", region, cubrick.ServiceName(region))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "table\tpartition\tshard\thost")
		for _, tbl := range tables {
			info, err := d.Catalog.Table(tbl)
			if err != nil {
				continue
			}
			for p := 0; p < info.Partitions; p++ {
				shard := d.Catalog.ShardOf(tbl, p)
				a, err := d.SM.Assignment(cubrick.ServiceName(region), shard)
				host := "(unassigned)"
				if err == nil {
					host = a.Primary()
				}
				fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", tbl, p, shard, host)
			}
		}
		w.Flush()
	}
}

func printMigrations(events []shardmgr.MigrationEvent) {
	if len(events) == 0 {
		fmt.Println("no migrations")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tservice\tshard\tfrom\tto")
	for _, ev := range events {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", ev.Kind, ev.Service, ev.Shard, ev.From, ev.To)
	}
	w.Flush()
}
