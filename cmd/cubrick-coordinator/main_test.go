package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cubrick/internal/netexec"
)

func newTestCoordinator(t *testing.T, workers int) *coordServer {
	t.Helper()
	var urls []string
	for i := 0; i < workers; i++ {
		srv := httptest.NewServer(netexec.NewWorker().Handler())
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	cluster, err := netexec.NewCluster(urls, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &coordServer{cluster: cluster}
}

func post(t *testing.T, h http.HandlerFunc, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	buf, _ := json.Marshal(body)
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	w := httptest.NewRecorder()
	h(w, req)
	return w
}

func TestCoordinatorEndToEnd(t *testing.T) {
	s := newTestCoordinator(t, 4)

	w := post(t, s.tables, "/tables", map[string]interface{}{
		"name":       "events",
		"partitions": 4,
		"schema": map[string]interface{}{
			"dimensions": []map[string]interface{}{
				{"name": "ds", "max": 30, "buckets": 6},
				{"name": "app", "max": 20, "buckets": 4},
			},
			"metrics": []map[string]interface{}{{"name": "value"}},
		},
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", w.Code, w.Body)
	}

	rows := make([]map[string]interface{}, 0, 200)
	want := 0.0
	for i := 0; i < 200; i++ {
		rows = append(rows, map[string]interface{}{
			"dims":    []uint32{uint32(i) % 30, uint32(i) % 20},
			"metrics": []float64{float64(i)},
		})
		want += float64(i)
	}
	w = post(t, s.load, "/load", map[string]interface{}{"table": "events", "rows": rows})
	if w.Code != http.StatusOK {
		t.Fatalf("load: %d %s", w.Code, w.Body)
	}

	w = post(t, s.query, "/query", map[string]string{"cql": "SELECT SUM(value) AS total FROM events"})
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	var resp struct {
		Rows   [][]float64 `json:"rows"`
		Fanout int         `json:"fanout"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rows[0][0] != want {
		t.Fatalf("sum = %v, want %v", resp.Rows[0][0], want)
	}
	if resp.Fanout < 1 || resp.Fanout > 4 {
		t.Fatalf("fanout = %d", resp.Fanout)
	}

	// Health.
	req := httptest.NewRequest(http.MethodGet, "/health", nil)
	rec := httptest.NewRecorder()
	s.health(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d %s", rec.Code, rec.Body)
	}
	// Table list.
	req = httptest.NewRequest(http.MethodGet, "/tables", nil)
	rec = httptest.NewRecorder()
	s.tables(rec, req)
	var tbls map[string]int
	json.Unmarshal(rec.Body.Bytes(), &tbls)
	if tbls["events"] != 4 {
		t.Fatalf("tables = %v", tbls)
	}
}

func TestCoordinatorErrors(t *testing.T) {
	s := newTestCoordinator(t, 2)
	if w := post(t, s.query, "/query", map[string]string{"cql": "garbage"}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad cql: %d", w.Code)
	}
	if w := post(t, s.query, "/query", map[string]string{"cql": "SELECT COUNT(*) FROM ghost"}); w.Code != http.StatusBadGateway {
		t.Fatalf("unknown table: %d", w.Code)
	}
	if w := post(t, s.query, "/query", map[string]string{"cql": "SELECT COUNT(*) FROM a JOIN b"}); w.Code != http.StatusBadRequest {
		t.Fatalf("join: %d", w.Code)
	}
	if w := post(t, s.load, "/load", map[string]interface{}{"table": "ghost", "rows": []interface{}{}}); w.Code != http.StatusBadRequest {
		t.Fatalf("load unknown: %d", w.Code)
	}
}
