// Command cubrick-coordinator fronts a set of cubrick-worker processes: it
// owns the table catalog, routes loads by the partial-sharding layout, and
// serves CQL queries by scatter-gathering binary partials over HTTP.
//
//	cubrick-worker -addr :9001 & cubrick-worker -addr :9002 &
//	cubrick-coordinator -addr :8080 -workers http://localhost:9001,http://localhost:9002
//
// API:
//
//	POST /tables {"name":..., "partitions":8, "schema":{...}}
//	POST /load   {"table":..., "rows":[...]}
//	POST /query  {"cql": "SELECT ..."}
//	GET  /tables
//	GET  /health
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"cubrick/internal/cql"
	"cubrick/internal/netexec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs")
	maxShards := flag.Int64("max-shards", 100000, "shard key space size")
	flag.Parse()
	urls := strings.Split(*workers, ",")
	var clean []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, u)
		}
	}
	cluster, err := netexec.NewCluster(clean, *maxShards, &http.Client{
		Timeout: 30 * time.Second,
		// Pool keep-alive connections sized to the fan-out so every query
		// doesn't re-dial each worker.
		Transport: netexec.NewTransport(len(clean)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	s := &coordServer{cluster: cluster}
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", s.tables)
	mux.HandleFunc("/load", s.load)
	mux.HandleFunc("/query", s.query)
	mux.HandleFunc("/health", s.health)
	log.Printf("cubrick-coordinator on %s over %d workers", *addr, len(clean))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type coordServer struct {
	cluster *netexec.Cluster
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *coordServer) tables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.cluster.Tables())
	case http.MethodPost:
		var req struct {
			Name       string             `json:"name"`
			Partitions int                `json:"partitions"`
			Schema     netexec.SchemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Partitions == 0 {
			req.Partitions = 8 // the paper's default (§IV-B)
		}
		if err := s.cluster.CreateTable(req.Name, req.Schema.ToSchema(), req.Partitions); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *coordServer) load(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Table string `json:"table"`
		Rows  []struct {
			Dims    []uint32  `json:"dims"`
			Metrics []float64 `json:"metrics"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dims := make([][]uint32, len(req.Rows))
	mets := make([][]float64, len(req.Rows))
	for i, row := range req.Rows {
		dims[i], mets[i] = row.Dims, row.Metrics
	}
	if err := s.cluster.Load(req.Table, dims, mets); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Rows)})
}

func (s *coordServer) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		CQL string `json:"cql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := cql.Parse(req.CQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sel, ok := st.(*cql.SelectStmt)
	if !ok || sel.JoinTable != "" {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("coordinator supports single-table SELECT only"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	res, err := s.cluster.Query(ctx, sel.Table, sel.Query)
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	fanout, _ := s.cluster.Fanout(sel.Table)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"columns":     res.Columns,
		"rows":        res.Rows,
		"rowsScanned": res.RowsScanned,
		"fanout":      fanout,
	})
}

func (s *coordServer) health(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	bad := s.cluster.Health(ctx)
	status := http.StatusOK
	if len(bad) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]interface{}{
		"workers":   len(s.cluster.Workers()),
		"unhealthy": bad,
	})
}
