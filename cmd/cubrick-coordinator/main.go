// Command cubrick-coordinator fronts a set of cubrick-worker processes: it
// owns the table catalog, routes loads by the partial-sharding layout, and
// serves CQL queries by scatter-gathering binary partials over HTTP.
//
//	cubrick-worker -addr :9001 & cubrick-worker -addr :9002 &
//	cubrick-coordinator -addr :8080 -workers http://localhost:9001,http://localhost:9002
//
// API:
//
//	POST /tables {"name":..., "partitions":8, "schema":{...}}
//	POST /load   {"table":..., "rows":[...]}
//	POST /query  {"cql": "SELECT ..."}
//	POST /move   {"table":..., "partition":0, "target":"http://..."}
//	GET  /move?table=...&partition=0   observe a migration checkpoint
//	GET  /tables
//	GET  /health
//	GET  /stats   legacy JSON counter alias (retries, hedges, breaker trips, ...)
//	GET  /metrics Prometheus text format: the /stats counters plus query,
//	              merge and fetch latency histograms (p50/p95/p99/p999)
//	GET  /debug/trace[/{id}]  the bounded in-memory trace ring
//
// Every query runs under a root trace span whose ID is returned in the
// X-Cubrick-Trace response header and propagated to workers; queries
// slower than -slow-query-ms log a one-line per-stage breakdown. -pprof
// mounts net/http/pprof under /debug/pprof/.
//
// The resilience layer is configured by flags: -retries, -hedge-quantile,
// -per-try-timeout, -min-coverage, -breaker-failures, -breaker-open,
// -replication, -max-partial-bytes, -deadline.
//
// Online shard migration (POST /move) is tuned by -cutover-pause-ms (how
// long a source may stay fenced while the final delta ships) and
// -dual-read-window (how long after the ownership flip queries read both
// placements and keep the fresher answer).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"cubrick/internal/admission"
	"cubrick/internal/core"
	"cubrick/internal/cql"
	"cubrick/internal/metrics"
	"cubrick/internal/migrate"
	"cubrick/internal/netexec"
	"cubrick/internal/rescache"
	"cubrick/internal/trace"
	"cubrick/internal/zk"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs")
	maxShards := flag.Int64("max-shards", 100000, "shard key space size")
	deadline := flag.Duration("deadline", 30*time.Second, "per-query deadline")
	retries := flag.Int("retries", 3, "attempts per partition (1 disables retries)")
	perTryTimeout := flag.Duration("per-try-timeout", 10*time.Second, "deadline per attempt (0 = query deadline only)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "latency quantile before hedging to a replica (0 disables)")
	hedgeMin := flag.Duration("hedge-min", netexec.DefaultHedgeMinDelay, "minimum hedge delay")
	minCoverage := flag.Float64("min-coverage", 1, "minimum partition fraction for a degraded result (1 = exact)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive failures that open a host's circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 5*time.Second, "how long an open breaker rejects before probing")
	maxPartialBytes := flag.Int64("max-partial-bytes", netexec.DefaultMaxPartialBytes, "per-worker partial response size bound")
	replication := flag.Int("replication", 0, "replica copies per partition beyond the primary")
	enableMetrics := flag.Bool("metrics", true, "serve Prometheus text format on /metrics (counters stay on /stats)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	traceRing := flag.Int("trace-ring", trace.DefaultRingSize, "how many traces the /debug/trace ring retains")
	slowQueryMS := flag.Int("slow-query-ms", 500, "log a per-stage breakdown for queries slower than this (0 disables)")
	maxConcurrent := flag.Int("max-concurrent-queries", 0, "cap on concurrently executing queries; excess queries queue (0 disables admission control)")
	queueDepth := flag.Int("queue-depth", 64, "bound on the admission queue; arrivals beyond it are shed with 429")
	fold := flag.String("fold", "on", "worker-side shared-scan folding for queries from this coordinator (on/off)")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "byte budget for the finished-result cache with ingest-epoch invalidation (0 disables)")
	topkOverfetch := flag.Int("topk-overfetch", 0, "top-k pushdown overfetch factor: workers ship their local top overfetch*k groups plus a bound instead of full partials (0 disables)")
	cutoverPauseMS := flag.Int("cutover-pause-ms", 2000, "bound on how long a migrating partition's source stays fenced while the final delta ships")
	dualReadWindow := flag.Duration("dual-read-window", 2*time.Second, "how long after an ownership flip queries read both placements and keep the fresher answer")
	flag.Parse()
	if *fold != "on" && *fold != "off" {
		log.Fatalf("cubrick-coordinator: -fold must be on or off, got %q", *fold)
	}
	urls := strings.Split(*workers, ",")
	var clean []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			clean = append(clean, u)
		}
	}
	cluster, err := netexec.NewCluster(clean, *maxShards, &http.Client{
		Timeout: *deadline,
		// Pool keep-alive connections sized to the fan-out so every query
		// doesn't re-dial each worker.
		Transport: netexec.NewTransport(len(clean)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	cluster.SetReplication(*replication)
	reg := metrics.NewRegistry()
	coord := cluster.Coordinator()
	coord.Policy = netexec.QueryPolicy{
		MaxAttempts:   *retries,
		BaseBackoff:   netexec.DefaultBaseBackoff,
		MaxBackoff:    netexec.DefaultMaxBackoff,
		PerTryTimeout: *perTryTimeout,
		HedgeQuantile: *hedgeQuantile,
		HedgeMinDelay: *hedgeMin,
		MinCoverage:   *minCoverage,
	}
	breakers := netexec.NewBreakerGroup(netexec.BreakerConfig{
		FailureThreshold: *breakerFailures,
		OpenTimeout:      *breakerOpen,
	})
	breakers.Metrics = reg
	coord.Breakers = breakers
	coord.Metrics = reg
	coord.MaxPartialBytes = *maxPartialBytes
	coord.NoFold = *fold == "off"
	coord.TopKOverfetch = *topkOverfetch
	if *topkOverfetch > 0 {
		log.Printf("cubrick-coordinator top-k pushdown: topk-overfetch=%d", *topkOverfetch)
	}
	if *resultCacheBytes > 0 {
		coord.ResultCache = rescache.New(*resultCacheBytes)
		coord.ResultCache.SetMetrics(reg)
		log.Printf("cubrick-coordinator result cache: result-cache-bytes=%d", *resultCacheBytes)
	}
	if *maxConcurrent > 0 {
		coord.Admission = admission.New(admission.Config{
			MaxConcurrent: *maxConcurrent,
			QueueDepth:    *queueDepth,
			Metrics:       reg,
		})
		log.Printf("cubrick-coordinator admission: max-concurrent=%d queue-depth=%d", *maxConcurrent, *queueDepth)
	}
	tracer := trace.New(trace.Config{
		RingSize:           *traceRing,
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
	})
	coord.Tracer = tracer
	s := &coordServer{cluster: cluster, metrics: reg, tracer: tracer, deadline: *deadline}
	s.migrator = &migrate.Driver{
		ZK:      zk.NewStore(nil),
		Router:  cluster,
		Metrics: reg,
		Config: migrate.Config{
			CutoverPause:   time.Duration(*cutoverPauseMS) * time.Millisecond,
			DualReadWindow: *dualReadWindow,
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/tables", s.tables)
	mux.HandleFunc("/load", s.load)
	mux.HandleFunc("/query", s.query)
	mux.HandleFunc("/move", s.move)
	mux.HandleFunc("/health", s.health)
	mux.HandleFunc("/stats", s.stats)
	mux.Handle("/debug/trace", tracer.Handler())
	mux.Handle("/debug/trace/", tracer.Handler())
	if *enableMetrics {
		mux.Handle("/metrics", metrics.Handler(reg))
	}
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	log.Printf("cubrick-coordinator on %s over %d workers (replication=%d, retries=%d, min-coverage=%g, metrics=%v, pprof=%v)",
		*addr, len(clean), *replication, *retries, *minCoverage, *enableMetrics, *enablePprof)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type coordServer struct {
	cluster  *netexec.Cluster
	metrics  *metrics.Registry
	tracer   *trace.Tracer
	deadline time.Duration
	migrator *migrate.Driver
}

// reqCtx derives a request context bounded by the server deadline
// (defaulting when the struct was built without one, as tests do).
func (s *coordServer) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.deadline
	if d <= 0 {
		d = 30 * time.Second
	}
	return context.WithTimeout(r.Context(), d)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *coordServer) tables(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.cluster.Tables())
	case http.MethodPost:
		var req struct {
			Name       string             `json:"name"`
			Partitions int                `json:"partitions"`
			Schema     netexec.SchemaJSON `json:"schema"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Partitions == 0 {
			req.Partitions = 8 // the paper's default (§IV-B)
		}
		ctx, cancel := s.reqCtx(r)
		defer cancel()
		if err := s.cluster.CreateTable(ctx, req.Name, req.Schema.ToSchema(), req.Partitions); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"status": "created"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *coordServer) load(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Table string `json:"table"`
		Rows  []struct {
			Dims    []uint32  `json:"dims"`
			Metrics []float64 `json:"metrics"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	dims := make([][]uint32, len(req.Rows))
	mets := make([][]float64, len(req.Rows))
	for i, row := range req.Rows {
		dims[i], mets[i] = row.Dims, row.Metrics
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if err := s.cluster.Load(ctx, req.Table, dims, mets); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"loaded": len(req.Rows)})
}

func (s *coordServer) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		CQL string `json:"cql"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st, err := cql.Parse(req.CQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sel, ok := st.(*cql.SelectStmt)
	if !ok || sel.JoinTable != "" {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("coordinator supports single-table SELECT only"))
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	// Clients identify themselves for admission accounting: tenant quotas
	// and priority scheduling key off these headers, and both propagate
	// worker-ward on the partial fetches.
	if tenant, prio := r.Header.Get(netexec.HeaderTenant), r.Header.Get(netexec.HeaderPriority); tenant != "" || prio != "" {
		priority, _ := strconv.Atoi(prio)
		ctx = admission.WithMeta(ctx, admission.Meta{Tenant: tenant, Priority: priority})
	}
	// X-Cubrick-Cache: off forces a fully recomputed answer — the result
	// cache is skipped here and the header propagates to workers, which
	// bypass their brick and decoded-column caches too.
	if r.Header.Get(netexec.HeaderCache) == "off" {
		ctx = netexec.WithCacheBypass(ctx)
	}
	// The root span covers parse-to-response; its trace ID goes back to
	// the client so a slow query is immediately retrievable from
	// /debug/trace/{id}.
	ctx, span := s.tracer.StartSpan(ctx, "coordinator.query")
	span.SetAttr("table", sel.Table)
	span.SetAttr("cql", req.CQL)
	if id := span.TraceID(); id != "" {
		w.Header().Set(trace.HeaderTrace, id)
	}
	res, err := s.cluster.Query(ctx, sel.Table, sel.Query)
	span.EndErr(err)
	if err != nil {
		if errors.Is(err, admission.ErrQueueFull) {
			// Shed by admission control: 429 is retryable under the
			// client-side resilience policy.
			writeErr(w, http.StatusTooManyRequests, err)
			return
		}
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	fanout, _ := s.cluster.Fanout(sel.Table)
	resp := map[string]interface{}{
		"columns":     res.Columns,
		"rows":        res.Rows,
		"rowsScanned": res.RowsScanned,
		"fanout":      fanout,
		"coverage":    res.Coverage,
	}
	if len(res.MissingPartitions) > 0 {
		resp["missingPartitions"] = res.MissingPartitions
	}
	writeJSON(w, http.StatusOK, resp)
}

// move runs (POST) or observes (GET) an online shard migration.
//
//	POST /move {"table":"events","partition":0,"target":"http://host:9003"}
//	GET  /move?table=events&partition=0
//
// The POST runs the full prepare→copy→catchup→cutover→flip→drop state
// machine synchronously and returns the completed record; a target URL
// that is not yet a cluster member joins as an empty worker first (the
// scale-out path). The GET returns the durable checkpoint, which is how
// an operator watches or post-mortems a move.
func (s *coordServer) move(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		table := r.URL.Query().Get("table")
		p, err := strconv.Atoi(r.URL.Query().Get("partition"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad partition: %w", err))
			return
		}
		rec, ok, err := s.migrator.LoadRecord(table, core.PartitionName(table, p))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no migration recorded for %s partition %d", table, p))
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case http.MethodPost:
		var req struct {
			Table     string `json:"table"`
			Partition int    `json:"partition"`
			Target    string `json:"target"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		urls, _, err := s.cluster.PartitionPlacement(req.Table, req.Partition)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if len(urls) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("no placement for %s partition %d", req.Table, req.Partition))
			return
		}
		s.cluster.AddWorker(req.Target) // no-op when already a member
		// The move is detached from the client connection: a migration must
		// not abort because the operator's curl timed out mid-cutover.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		rec, err := s.migrator.Start(ctx, &migrate.Record{
			Service:   req.Table,
			Shard:     int64(req.Partition),
			Partition: core.PartitionName(req.Table, req.Partition),
			Source:    urls[0],
			Target:    req.Target,
		})
		if err != nil {
			writeJSON(w, http.StatusBadGateway, map[string]interface{}{
				"error":  err.Error(),
				"record": rec,
			})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *coordServer) health(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	bad := s.cluster.Health(ctx)
	status := http.StatusOK
	if len(bad) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]interface{}{
		"workers":   len(s.cluster.Workers()),
		"unhealthy": bad,
	})
}

func (s *coordServer) stats(w http.ResponseWriter, r *http.Request) {
	counters := map[string]int64{}
	if s.metrics != nil {
		counters = s.metrics.CounterValues()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"counters": counters,
	})
}
