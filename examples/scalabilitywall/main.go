// Scalabilitywall: the paper's headline argument, end to end. A fully
// sharded system broadcasts every query to all nodes, so its success ratio
// decays as the cluster grows — past the SLA it has hit the scalability
// wall (Figs 1-2). A partially sharded system bounds fan-out at the
// table's partition count, so success stays flat no matter how large the
// cluster gets.
//
// Run: go run ./examples/scalabilitywall
package main

import (
	"fmt"

	"cubrick/internal/core"
	"cubrick/internal/randutil"
	"cubrick/internal/wall"
)

func main() {
	const (
		p          = 1e-4 // per-server failure probability (0.01%)
		sla        = 0.99
		partitions = 8
		trials     = 40000
	)

	wallAt, err := wall.Crossing(p, sla)
	if err != nil {
		panic(err)
	}
	fmt.Printf("analytic model: p=%.4f%%, SLA=%.0f%% -> scalability wall at %d servers\n\n",
		p*100, sla*100, wallAt)

	fmt.Printf("%-14s %-12s %-22s %-22s\n", "cluster size", "", "full sharding", "partial sharding (8 partitions)")
	fmt.Printf("%-14s %-12s %-11s %-10s %-11s %-10s\n", "", "", "fanout", "success", "fanout", "success")

	rnd := randutil.New(1)
	for _, size := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		fullFanout := core.QueryFanout(core.FullSharding, size, partitions, partitions)
		partFanout := core.QueryFanout(core.PartialSharding, size, partitions, partitions)

		fullSim := wall.Simulate(p, fullFanout, trials, rnd)
		partSim := wall.Simulate(p, partFanout, trials, rnd)

		marker := ""
		if fullSim < sla {
			marker = "  <- below SLA: the wall"
		}
		fmt.Printf("%-14d %-12s %-11d %-10.4f %-11d %-10.4f%s\n",
			size, "", fullFanout, fullSim, partFanout, partSim, marker)
	}

	fmt.Println("\nfull sharding crosses the SLA near the analytic wall; partial sharding")
	fmt.Println("keeps fan-out (and success ratio) constant as the cluster scales out —")
	fmt.Println("\"all tightly coupled analytical systems must be partially-sharded in")
	fmt.Println("order to be scalable\" (paper §II-C).")
}
