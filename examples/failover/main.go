// Failover: kill hosts and watch the system heal — the proxy transparently
// retries queries in another region (§IV-D), heartbeat expiry triggers SM
// failovers, and the replacement server recovers the shard's data from a
// healthy region (§IV-E).
//
// Run: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	cubrick "cubrick"
	"cubrick/internal/cluster"
	icubrick "cubrick/internal/cubrick"
	"cubrick/internal/shardmgr"
)

func main() {
	cfg := cubrick.Defaults()
	cfg.Deployment.Transport.RequestFailureProb = 0
	// Give each region headroom: with as many hosts as partitions, every
	// failover target would already hold one of the table's shards and
	// reject the move as a collision (§IV-A).
	cfg.Deployment.RacksPerRegion = 3
	cfg.Deployment.HostsPerRack = 6
	db, err := cubrick.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dep := db.Deployment()

	schema := cubrick.Schema{
		Dimensions: []cubrick.Dimension{{Name: "ds", Max: 30, Buckets: 6}},
		Metrics:    []cubrick.Metric{{Name: "value"}},
	}
	if err := db.CreateTable("revenue", schema); err != nil {
		log.Fatal(err)
	}
	var dims [][]uint32
	var metrics [][]float64
	var want float64
	for i := 0; i < 300; i++ {
		dims = append(dims, []uint32{uint32(i) % 30})
		metrics = append(metrics, []float64{float64(i)})
		want += float64(i)
	}
	if err := db.Load("revenue", dims, metrics); err != nil {
		log.Fatal(err)
	}

	dep.SM.OnMigration(func(ev shardmgr.MigrationEvent) {
		fmt.Printf("  [sm] %s migration: shard %d %s -> %s\n", ev.Kind, ev.Shard, ev.From, ev.To)
	})

	check := func(phase string) {
		res, err := db.Query("SELECT SUM(value) FROM revenue")
		if err != nil {
			fmt.Printf("%s: query FAILED: %v\n", phase, err)
			return
		}
		status := "OK"
		if res.Rows[0][0] != want {
			status = fmt.Sprintf("WRONG (%v != %v)", res.Rows[0][0], want)
		}
		fmt.Printf("%s: sum=%v [%s] answered by region %s (retries so far: %d)\n",
			phase, res.Rows[0][0], status, res.Region, db.Proxy().Retries.Value())
	}

	check("baseline")

	// Kill the host serving partition 0 in the first region.
	shard := dep.Catalog.ShardOf("revenue", 0)
	a, _ := dep.SM.Assignment(icubrick.ServiceName(dep.Config.Regions[0]), shard)
	victim, _ := dep.Fleet.Host(a.Primary())
	fmt.Printf("\nkilling %s (serves revenue#0 in %s)\n", victim.Name, dep.Config.Regions[0])
	victim.SetState(cluster.Down)

	// Queries keep succeeding immediately: the proxy retries in another
	// region without the caller noticing.
	check("during outage")

	// Heartbeats lapse; SM detects the death and fails the shards over,
	// recovering data from a healthy region.
	fmt.Println("\nadvancing simulated time past the heartbeat TTL...")
	for i := 0; i < 20; i++ {
		db.Advance(10 * time.Second)
	}
	check("after failover")

	// Finally the broken host comes back from repair, empty, and rejoins.
	fmt.Printf("\n%s repaired and rejoining\n", victim.Name)
	victim.SetState(cluster.Up)
	node, _ := dep.Node(victim.Name)
	node.Reset()
	agent, _ := dep.Agent(victim.Name)
	if err := agent.Rejoin(); err != nil {
		log.Fatal(err)
	}
	check("after rejoin")

	fmt.Printf("\nproxy stats: queries=%d retries=%d failures=%d\n",
		db.Proxy().Queries.Value(), db.Proxy().Retries.Value(), db.Proxy().Failures.Value())
}
