// Multitenant: the workload partial sharding was built for (§II-C) — a
// large number of small and medium tables sharing one cluster. This
// example creates a tenant population, shows how the partition policy
// sizes each table, reports the collision classes of Fig 4a on the live
// deployment, and runs a load-balancing pass.
//
// Run: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cubrick/internal/cubrick"
	"cubrick/internal/randutil"
	"cubrick/internal/workload"
)

func main() {
	cfg := cubrick.DefaultDeploymentConfig()
	cfg.RacksPerRegion = 3
	cfg.HostsPerRack = 8
	// A small key space (production uses 100k-1M for thousands of tables)
	// keeps the shard-reuse collision classes of Fig 4a visible at this
	// example's 40-table scale.
	cfg.MaxShards = 5000
	d, err := cubrick.Open(cfg, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}

	// Generate a tenant population with lognormal sizes and create a
	// table per tenant; the catalog assigns 8 partitions to everyone
	// (tables re-partition later if they outgrow them, §IV-B).
	rnd := randutil.New(7)
	specs := workload.GenerateTables(workload.DefaultPopulation(40), rnd)
	schema := workload.StandardSchema()
	gen := workload.NewRowGenerator(schema, rnd.Fork())
	for _, spec := range specs {
		if _, err := d.CreateTable(spec.Name, schema); err != nil {
			log.Fatal(err)
		}
		// Load a slice of each tenant's data (full sizes would be slow
		// in an example; ratios are what matter).
		rows := int(spec.Rows / 1000)
		if rows < 10 {
			rows = 10
		}
		if rows > 2000 {
			rows = 2000
		}
		if err := d.LoadGenerated(spec.Name, rows, gen); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("created %d tenant tables across %d hosts per region\n",
		len(specs), len(d.Fleet.Region("east")))

	// Fan-out containment: every tenant touches at most its partition
	// count of hosts, not the whole region.
	maxFanout := 0
	for _, spec := range specs {
		n, err := d.DistinctHosts(spec.Name, "east")
		if err != nil {
			log.Fatal(err)
		}
		if n > maxFanout {
			maxFanout = n
		}
	}
	fmt.Printf("max per-table fan-out: %d hosts (cluster has %d per region) — the partial-sharding containment\n",
		maxFanout, len(d.Fleet.Region("east")))

	// Fig 4a on the live deployment.
	rep := d.CollisionReport("east")
	fmt.Printf("\ncollisions across %d tables:\n", rep.Tables)
	fmt.Printf("  shard collisions (same table, two shards on one host): %.1f%%\n", rep.FracShardCollision()*100)
	fmt.Printf("  cross-table partition collisions (shared shard):        %.1f%%\n", rep.FracCrossPartition()*100)
	fmt.Printf("  same-table partition collisions (prevented by design):  %.1f%%\n", rep.FracSamePartition()*100)

	// Load distribution before/after a balancing pass.
	svc := cubrick.ServiceName("east")
	if err := d.SM.CollectMetrics(svc); err != nil {
		log.Fatal(err)
	}
	before, _ := d.SM.HostLoads(svc)
	moved, err := d.SM.BalanceOnce(svc)
	if err != nil {
		log.Fatal(err)
	}
	after, _ := d.SM.HostLoads(svc)
	fmt.Printf("\nload balancer moved %d shards\n", moved)
	fmt.Printf("  host-load spread before: %s\n", spread(before))
	fmt.Printf("  host-load spread after:  %s\n", spread(after))
}

func spread(loads map[string]float64) string {
	vals := make([]float64, 0, len(loads))
	for _, v := range loads {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("min=%.0f median=%.0f max=%.0f", vals[0], vals[len(vals)/2], vals[len(vals)-1])
}
