// Quickstart: open an in-process three-region Cubrick deployment, create a
// table, load rows, and query it through the fault-tolerant proxy.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cubrick "cubrick"
)

func main() {
	db, err := cubrick.Open(cubrick.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// A dashboard-style table: daily metric values per app and region.
	// Dimension values are small integers (dictionary-encode your strings);
	// each dimension's domain is range-partitioned into buckets, which is
	// what gives Cubrick its index-free filtering (Granular Partitioning).
	schema := cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "ds", Max: 365, Buckets: 73},  // day of year
			{Name: "region", Max: 8, Buckets: 8}, // deployment region
			{Name: "app", Max: 100, Buckets: 10}, // application id
		},
		Metrics: []cubrick.Metric{{Name: "value"}},
	}
	if err := db.CreateTable("daily_metrics", schema); err != nil {
		log.Fatal(err)
	}

	// Load a few thousand synthetic rows.
	var dims [][]uint32
	var metrics [][]float64
	for day := uint32(0); day < 30; day++ {
		for region := uint32(0); region < 8; region++ {
			for app := uint32(0); app < 20; app++ {
				dims = append(dims, []uint32{day, region, app})
				metrics = append(metrics, []float64{float64(day*10 + region + app)})
			}
		}
	}
	if err := db.Load("daily_metrics", dims, metrics); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into daily_metrics\n", len(dims))

	// Interactive-style queries in CQL.
	for _, q := range []string{
		"SELECT COUNT(*) FROM daily_metrics",
		"SELECT SUM(value) AS total FROM daily_metrics WHERE ds < 7",
		"SELECT region, SUM(value) AS total FROM daily_metrics GROUP BY region ORDER BY total DESC LIMIT 3",
	} {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  columns: %v\n", q, res.Columns)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
		fmt.Printf("  (fan-out %d hosts, region %s, simulated latency %s)\n",
			res.Fanout, res.Region, res.Latency)
	}

	// The table is partially sharded: it touches only its partitions'
	// hosts, not the whole cluster.
	info := db.Tables()[0]
	fmt.Printf("\ntable %s has %d partitions — queries fan out to at most %d of the cluster's hosts\n",
		info.Name, info.Partitions, info.Partitions)
}
