// Starjoin: the replicated-dimension-table pattern of §II-B — small,
// frequently joined tables are replicated to all cluster nodes so star
// joins against large sharded fact tables run entirely node-local, keeping
// the partial-sharding fan-out guarantee intact.
//
// Run: go run ./examples/starjoin
package main

import (
	"fmt"
	"log"

	cubrick "cubrick"
)

func main() {
	cfg := cubrick.Defaults()
	cfg.Deployment.Transport.RequestFailureProb = 0
	db, err := cubrick.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The sharded fact table: ad impressions by day and campaign.
	factSchema := cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "campaign", Max: 50, Buckets: 10},
		},
		Metrics: []cubrick.Metric{{Name: "impressions"}},
	}
	if err := db.CreateTable("ad_events", factSchema); err != nil {
		log.Fatal(err)
	}

	// The replicated dimension table: campaign -> advertiser vertical.
	dimSchema := cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "campaign", Max: 50, Buckets: 10},
			{Name: "vertical", Max: 5, Buckets: 5}, // 0=retail 1=games ...
		},
	}
	if err := db.CreateReplicatedTable("campaigns", dimSchema); err != nil {
		log.Fatal(err)
	}

	// Load: every campaign gets impressions each day; verticals cycle.
	var fdims [][]uint32
	var fmets [][]float64
	for ds := uint32(0); ds < 30; ds++ {
		for c := uint32(0); c < 50; c++ {
			fdims = append(fdims, []uint32{ds, c})
			fmets = append(fmets, []float64{float64(100 + c)})
		}
	}
	if err := db.Load("ad_events", fdims, fmets); err != nil {
		log.Fatal(err)
	}
	var ddims [][]uint32
	var dmets [][]float64
	for c := uint32(0); c < 50; c++ {
		ddims = append(ddims, []uint32{c, c % 5})
		dmets = append(dmets, nil)
	}
	if err := db.LoadReplicated("campaigns", ddims, dmets); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d fact rows and a %d-row replicated dimension table\n", len(fdims), len(ddims))

	// The star join: group fact metrics by a dimension-table attribute.
	// Each fact partition joins against its host's local replica — no
	// data moves, and fan-out stays at the fact table's partition count.
	res, err := db.Query(`SELECT vertical, SUM(impressions) AS total
	                      FROM ad_events JOIN campaigns ON campaign
	                      WHERE ds < 7
	                      GROUP BY vertical ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimpressions by advertiser vertical (first week):\n")
	for _, row := range res.Rows {
		fmt.Printf("  vertical %v: %v impressions\n", row[0], row[1])
	}
	fmt.Printf("\n(join fan-out: %d hosts — same as a single-table query on ad_events;\n", res.Fanout)
	fmt.Println(" the replicated table added zero network hops)")
}
