// Dashboard: the interactive-analytics workload the paper's introduction
// motivates, end to end — dictionary-encoded string dimensions, a star
// join against a replicated dimension table, approximate distinct counts,
// HAVING, and ordered top-N — all over the partially-sharded deployment.
//
// Run: go run ./examples/dashboard
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	cubrick "cubrick"
	"cubrick/internal/randutil"
)

func main() {
	cfg := cubrick.Defaults()
	cfg.Deployment.Transport.RequestFailureProb = 0
	db, err := cubrick.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fact table: page-view events by day, country and page.
	if err := db.CreateTable("pageviews", cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "country", Max: 64, Buckets: 8},
			{Name: "page", Max: 512, Buckets: 16},
			{Name: "user", Max: 1 << 16, Buckets: 64},
		},
		Metrics: []cubrick.Metric{{Name: "ms_on_page"}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.EnableDictionary("pageviews", "country"); err != nil {
		log.Fatal(err)
	}

	// Replicated dimension table: page -> section of the site.
	if err := db.CreateReplicatedTable("pages", cubrick.Schema{
		Dimensions: []cubrick.Dimension{
			{Name: "page", Max: 512, Buckets: 16},
			{Name: "section", Max: 8, Buckets: 8},
		},
	}); err != nil {
		log.Fatal(err)
	}
	var pdims [][]uint32
	var pmets [][]float64
	for page := uint32(0); page < 512; page++ {
		pdims = append(pdims, []uint32{page, page % 8})
		pmets = append(pmets, nil)
	}
	if err := db.LoadReplicated("pages", pdims, pmets); err != nil {
		log.Fatal(err)
	}

	// Synthetic traffic: zipf-skewed pages and users, a handful of
	// countries.
	rnd := randutil.New(7)
	pageZipf := rnd.NewZipf(1.2, 512)
	userZipf := rnd.NewZipf(1.1, 1<<16)
	countries := []string{"US", "BR", "IN", "JP", "DE", "NG"}
	ids := make([]uint32, len(countries))
	for i, c := range countries {
		id, err := db.Encode("pageviews", "country", c)
		if err != nil {
			log.Fatal(err)
		}
		ids[i] = id
	}
	const rows = 20000
	dims := make([][]uint32, rows)
	mets := make([][]float64, rows)
	for i := 0; i < rows; i++ {
		dims[i] = []uint32{
			uint32(rnd.Intn(30)),
			ids[rnd.Intn(len(ids))],
			uint32(pageZipf.Next()),
			uint32(userZipf.Next()),
		}
		mets[i] = []float64{float64(500 + rnd.Intn(60000))}
	}
	if err := db.Load("pageviews", dims, mets); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d pageviews\n\n", rows)

	queries := []string{
		`SELECT COUNT(*) AS views, COUNT(DISTINCT user) AS uniques FROM pageviews`,
		`SELECT section, SUM(ms_on_page) AS engagement, COUNT(DISTINCT user) AS uniques
		 FROM pageviews JOIN pages ON page
		 GROUP BY section HAVING engagement > 1000000
		 ORDER BY engagement DESC LIMIT 5`,
		`SELECT ds, COUNT(*) AS views FROM pageviews
		 WHERE country = 'BR' AND ds < 7
		 GROUP BY ds ORDER BY ds`,
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(strings.Join(strings.Fields(q), " "))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  "+strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = fmt.Sprintf("%.0f", v)
			}
			fmt.Fprintln(w, "  "+strings.Join(cells, "\t"))
		}
		w.Flush()
		fmt.Printf("  (fan-out %d hosts, %s region, %v simulated)\n\n", res.Fanout, res.Region, res.Latency.Round(1e6))
	}
}
