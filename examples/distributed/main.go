// Distributed: the scatter-gather data plane over a real network. Four
// worker processes (here: four HTTP servers on localhost ports) each hold
// one partition of a table; a coordinator fans the query out over HTTP,
// merges the binary partial results and finalizes — the paper's execution
// flow with partials crossing actual sockets.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cubrick/internal/brick"
	"cubrick/internal/engine"
	"cubrick/internal/netexec"
)

func main() {
	schema := brick.Schema{
		Dimensions: []brick.Dimension{
			{Name: "ds", Max: 30, Buckets: 6},
			{Name: "app", Max: 20, Buckets: 4},
		},
		Metrics: []brick.Metric{{Name: "value"}},
	}

	// Start four workers on real localhost listeners.
	const workers = 4
	var targets []netexec.Target
	for i := 0; i < workers; i++ {
		w := netexec.NewWorker()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: w.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		url := "http://" + ln.Addr().String()
		part := fmt.Sprintf("events#%d", i)
		cl := &netexec.Client{BaseURL: url}
		if err := cl.CreatePartition(context.Background(), part, schema); err != nil {
			log.Fatal(err)
		}
		targets = append(targets, netexec.Target{URL: url, Partition: part})
		fmt.Printf("worker %d: %s serving %s\n", i, url, part)
	}

	// Shard 4000 rows round-robin across the workers, over the wire.
	dims := make([][][]uint32, workers)
	mets := make([][][]float64, workers)
	for i := 0; i < 4000; i++ {
		w := i % workers
		dims[w] = append(dims[w], []uint32{uint32(i) % 30, uint32(i) % 20})
		mets[w] = append(mets[w], []float64{float64(i % 100)})
	}
	for i, t := range targets {
		cl := &netexec.Client{BaseURL: t.URL}
		if err := cl.Load(context.Background(), t.Partition, dims[i], mets[i]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("loaded 4000 rows across 4 workers")

	// Scatter-gather over HTTP.
	q := &engine.Query{
		Aggregates: []engine.Aggregate{
			{Func: engine.Sum, Metric: "value", Alias: "total"},
			{Func: engine.Avg, Metric: "value", Alias: "mean"},
			{Func: engine.Count, Alias: "n"},
		},
		GroupBy: []string{"app"},
		Filter:  map[string][2]uint32{"ds": {0, 14}},
		OrderBy: "total", Desc: true, Limit: 5,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	res, err := (&netexec.Coordinator{}).Query(ctx, targets, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop apps by total value (first half of month), merged from %d workers in %s:\n",
		workers, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%v\n", res.Columns)
	for _, row := range res.Rows {
		fmt.Printf("%v\n", row)
	}
	fmt.Printf("(scanned %d rows across the cluster)\n", res.RowsScanned)
}
